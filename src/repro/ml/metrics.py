"""Classification and regression metrics.

The paper reports its classifier quality as weighted averages across
price classes: TP rate 82.9%, FP rate 6.8%, precision 83.5%, recall
82.9%, and weighted AUCROC 0.964 (section 5.4).  These are the Weka-style
definitions: per-class one-vs-rest rates, averaged with class-support
weights.  This module implements exactly those, plus the regression
errors used to reject the regression baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def confusion_matrix(y_true: Sequence[int], y_pred: Sequence[int],
                     n_classes: int | None = None) -> np.ndarray:
    """Confusion matrix ``C[i, j]``: true class ``i`` predicted as ``j``."""
    yt = np.asarray(y_true, dtype=int)
    yp = np.asarray(y_pred, dtype=int)
    if yt.shape != yp.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if yt.size == 0:
        raise ValueError("empty label arrays")
    if n_classes is None:
        n_classes = int(max(yt.max(), yp.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(matrix, (yt, yp), 1)
    return matrix


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of exactly correct predictions."""
    yt = np.asarray(y_true)
    yp = np.asarray(y_pred)
    if yt.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(yt == yp))


@dataclass(frozen=True)
class ClassificationReport:
    """Weighted-average one-vs-rest classification metrics (Weka style)."""

    accuracy: float
    tp_rate: float
    fp_rate: float
    precision: float
    recall: float
    f1: float
    auc_roc: float | None
    per_class: dict[int, dict[str, float]]
    support: dict[int, int]

    def worst_class_gap(self, metric: str = "recall") -> float:
        """Largest shortfall of any class below the weighted average.

        The paper notes "no class performing worse than 5% from the
        average"; this returns that gap so tests can assert it.
        """
        average = getattr(self, metric)
        values = [stats[metric] for stats in self.per_class.values()]
        return max((average - v for v in values), default=0.0)


def _binary_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """ROC AUC via the Mann-Whitney rank statistic (ties handled)."""
    pos = scores[labels]
    neg = scores[~labels]
    if pos.size == 0 or neg.size == 0:
        return float("nan")
    order = np.argsort(np.concatenate([pos, neg]), kind="mergesort")
    ranks = np.empty(order.size, dtype=float)
    combined = np.concatenate([pos, neg])[order]
    # Average ranks over tie groups.
    i = 0
    while i < combined.size:
        j = i
        while j + 1 < combined.size and combined[j + 1] == combined[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum_pos = ranks[: pos.size].sum()
    u = rank_sum_pos - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))


def roc_auc_ovr_weighted(y_true: Sequence[int], probabilities: np.ndarray) -> float:
    """Support-weighted one-vs-rest ROC AUC for a multi-class problem.

    ``probabilities`` is an ``(n_samples, n_classes)`` matrix of class
    scores (need not be normalised).  Classes absent from ``y_true`` are
    skipped.
    """
    yt = np.asarray(y_true, dtype=int)
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 2 or probs.shape[0] != yt.size:
        raise ValueError("probabilities must be (n_samples, n_classes)")
    total = 0.0
    weight_sum = 0
    for cls in np.unique(yt):
        labels = yt == cls
        support = int(labels.sum())
        if support == 0 or support == yt.size:
            continue
        auc = _binary_auc(labels, probs[:, cls])
        if np.isnan(auc):
            continue
        total += auc * support
        weight_sum += support
    if weight_sum == 0:
        raise ValueError("AUC undefined: need at least two classes present")
    return total / weight_sum


def classification_report(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    probabilities: np.ndarray | None = None,
    n_classes: int | None = None,
) -> ClassificationReport:
    """Full weighted-average report matching the paper's section 5.4."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    n = matrix.sum()
    classes = range(matrix.shape[0])

    per_class: dict[int, dict[str, float]] = {}
    support: dict[int, int] = {}
    for cls in classes:
        tp = matrix[cls, cls]
        fn = matrix[cls].sum() - tp
        fp = matrix[:, cls].sum() - tp
        tn = n - tp - fn - fp
        cls_support = int(tp + fn)
        if cls_support == 0:
            continue
        precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
        recall = tp / (tp + fn)
        fp_rate = fp / (fp + tn) if (fp + tn) > 0 else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if (precision + recall) > 0 else 0.0)
        per_class[cls] = {
            "tp_rate": float(recall),
            "fp_rate": float(fp_rate),
            "precision": float(precision),
            "recall": float(recall),
            "f1": float(f1),
        }
        support[cls] = cls_support

    total_support = sum(support.values())

    def weighted(metric: str) -> float:
        return sum(per_class[c][metric] * support[c] for c in per_class) / total_support

    auc = None
    if probabilities is not None:
        auc = roc_auc_ovr_weighted(y_true, probabilities)

    return ClassificationReport(
        accuracy=accuracy(y_true, y_pred),
        tp_rate=weighted("tp_rate"),
        fp_rate=weighted("fp_rate"),
        precision=weighted("precision"),
        recall=weighted("recall"),
        f1=weighted("f1"),
        auc_roc=auc,
        per_class=per_class,
        support=support,
    )


def mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Mean squared error."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.size == 0:
        raise ValueError("empty arrays")
    return float(np.mean((yt - yp) ** 2))


def root_mean_squared_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Mean absolute error."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.size == 0:
        raise ValueError("empty arrays")
    return float(np.mean(np.abs(yt - yp)))


def r2_score(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Coefficient of determination R^2."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.size == 0:
        raise ValueError("empty arrays")
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot
