"""Model serialisation.

The PME ships its fitted model to YourAdValue clients "in the form of a
decision tree" (paper section 3.2).  We serialise trees and forests to
plain JSON-compatible dicts: the client needs no training code, only
the traversal logic, mirroring how a browser extension would embed the
model.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, TreeNode

#: Version 2 adds fitted state (``feature_importances_``, ``oob_score_``)
#: and the constructor hyperparameters to forest payloads, so a loaded
#: forest is a faithful clone, not just a bag of trees.  Version-1
#: payloads still load (with default hyperparameters, as before).
FORMAT_VERSION = 2

#: Forest constructor hyperparameters round-tripped by version-2
#: payloads.  ``workers`` is deliberately absent: it is a runtime
#: execution knob, not part of the model.
_FOREST_PARAM_KEYS = (
    "n_estimators",
    "max_depth",
    "min_samples_leaf",
    "min_samples_split",
    "max_features",
    "criterion",
    "bootstrap",
    "oob_score",
    "seed",
)


def _check_format(payload: dict[str, Any]) -> int:
    version = int(payload.get("format", 1))
    if version < 1 or version > FORMAT_VERSION:
        raise ValueError(
            f"unsupported serialisation format {version} "
            f"(this build reads 1..{FORMAT_VERSION})"
        )
    return version


def _node_to_dict(node: TreeNode) -> dict[str, Any]:
    if node.is_leaf:
        value = node.value
        if isinstance(value, np.ndarray):
            payload: Any = [float(v) for v in value]
        else:
            payload = float(value)
        return {
            "leaf": True,
            "value": payload,
            "n": node.n_samples,
            "impurity": node.impurity,
        }
    assert node.left is not None and node.right is not None
    return {
        "leaf": False,
        "feature": node.feature,
        "threshold": node.threshold,
        "n": node.n_samples,
        "impurity": node.impurity,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: dict[str, Any]) -> TreeNode:
    if payload["leaf"]:
        value = payload["value"]
        if isinstance(value, list):
            value = np.asarray(value, dtype=float)
        return TreeNode(
            value=value, n_samples=int(payload["n"]), impurity=float(payload["impurity"])
        )
    return TreeNode(
        value=np.zeros(0),
        n_samples=int(payload["n"]),
        impurity=float(payload["impurity"]),
        feature=int(payload["feature"]),
        threshold=float(payload["threshold"]),
        left=_node_from_dict(payload["left"]),
        right=_node_from_dict(payload["right"]),
    )


def tree_to_dict(tree: DecisionTreeClassifier) -> dict[str, Any]:
    """Serialise a fitted classifier tree to a JSON-compatible dict."""
    if tree.root_ is None:
        raise ValueError("cannot serialise an unfitted tree")
    return {
        "format": FORMAT_VERSION,
        "kind": "decision_tree_classifier",
        "n_classes": tree.n_classes_,
        "n_features": tree.n_features_,
        "criterion": tree.criterion,
        "root": _node_to_dict(tree.root_),
    }


def tree_from_dict(payload: dict[str, Any]) -> DecisionTreeClassifier:
    """Rebuild a classifier tree from :func:`tree_to_dict` output.

    The flattened inference arrays are recompiled on load (they are
    derived state and never serialised), so a deserialised tree scores
    at full speed immediately.
    """
    if payload.get("kind") != "decision_tree_classifier":
        raise ValueError(f"not a serialised tree: kind={payload.get('kind')!r}")
    _check_format(payload)
    tree = DecisionTreeClassifier(criterion=payload.get("criterion", "gini"))
    tree.n_classes_ = int(payload["n_classes"])
    tree.n_features_ = int(payload["n_features"])
    tree.classes_ = np.arange(tree.n_classes_)
    tree.root_ = _node_from_dict(payload["root"])
    tree.compile_flat()
    return tree


def forest_to_dict(forest: RandomForestClassifier) -> dict[str, Any]:
    """Serialise a fitted forest: member trees, fitted state, params."""
    if not forest.trees_:
        raise ValueError("cannot serialise an unfitted forest")
    importances = forest.feature_importances_
    return {
        "format": FORMAT_VERSION,
        "kind": "random_forest_classifier",
        "n_classes": forest.n_classes_,
        "n_features": forest.n_features_,
        "params": {key: getattr(forest, key) for key in _FOREST_PARAM_KEYS},
        "feature_importances": (
            None if importances is None else [float(v) for v in importances]
        ),
        "oob_score": (
            None if forest.oob_score_ is None else float(forest.oob_score_)
        ),
        "trees": [tree_to_dict(t) for t in forest.trees_],
    }


def forest_from_dict(payload: dict[str, Any]) -> RandomForestClassifier:
    """Rebuild a forest from :func:`forest_to_dict` output.

    Version-2 payloads restore the constructor hyperparameters and the
    fitted state (``feature_importances_``, ``oob_score_``); version-1
    payloads (which carried neither) load with default hyperparameters,
    matching their historical behaviour.
    """
    if payload.get("kind") != "random_forest_classifier":
        raise ValueError(f"not a serialised forest: kind={payload.get('kind')!r}")
    version = _check_format(payload)
    if version >= 2:
        params = dict(payload["params"])
        unknown = set(params) - set(_FOREST_PARAM_KEYS)
        if unknown:
            raise ValueError(f"unknown forest params in payload: {sorted(unknown)}")
        forest = RandomForestClassifier(**params)
    else:
        forest = RandomForestClassifier(n_estimators=max(1, len(payload["trees"])))
    forest.n_classes_ = int(payload["n_classes"])
    forest.n_features_ = int(payload["n_features"])
    forest.trees_ = [tree_from_dict(t) for t in payload["trees"]]
    importances = payload.get("feature_importances")
    if importances is not None:
        forest.feature_importances_ = np.asarray(importances, dtype=float)
    oob = payload.get("oob_score")
    if oob is not None:
        forest.oob_score_ = float(oob)
    return forest


def dumps(payload: dict[str, Any]) -> str:
    """JSON-encode a serialised model."""
    return json.dumps(payload, separators=(",", ":"))


def loads(text: str) -> dict[str, Any]:
    """Decode a JSON-encoded serialised model."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("serialised model must be a JSON object")
    return payload
