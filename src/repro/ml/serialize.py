"""Model serialisation.

The PME ships its fitted model to YourAdValue clients "in the form of a
decision tree" (paper section 3.2).  We serialise trees and forests to
plain JSON-compatible dicts: the client needs no training code, only
the traversal logic, mirroring how a browser extension would embed the
model.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, TreeNode

FORMAT_VERSION = 1


def _node_to_dict(node: TreeNode) -> dict[str, Any]:
    if node.is_leaf:
        value = node.value
        if isinstance(value, np.ndarray):
            payload: Any = [float(v) for v in value]
        else:
            payload = float(value)
        return {
            "leaf": True,
            "value": payload,
            "n": node.n_samples,
            "impurity": node.impurity,
        }
    assert node.left is not None and node.right is not None
    return {
        "leaf": False,
        "feature": node.feature,
        "threshold": node.threshold,
        "n": node.n_samples,
        "impurity": node.impurity,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: dict[str, Any]) -> TreeNode:
    if payload["leaf"]:
        value = payload["value"]
        if isinstance(value, list):
            value = np.asarray(value, dtype=float)
        return TreeNode(
            value=value, n_samples=int(payload["n"]), impurity=float(payload["impurity"])
        )
    return TreeNode(
        value=np.zeros(0),
        n_samples=int(payload["n"]),
        impurity=float(payload["impurity"]),
        feature=int(payload["feature"]),
        threshold=float(payload["threshold"]),
        left=_node_from_dict(payload["left"]),
        right=_node_from_dict(payload["right"]),
    )


def tree_to_dict(tree: DecisionTreeClassifier) -> dict[str, Any]:
    """Serialise a fitted classifier tree to a JSON-compatible dict."""
    if tree.root_ is None:
        raise ValueError("cannot serialise an unfitted tree")
    return {
        "format": FORMAT_VERSION,
        "kind": "decision_tree_classifier",
        "n_classes": tree.n_classes_,
        "n_features": tree.n_features_,
        "criterion": tree.criterion,
        "root": _node_to_dict(tree.root_),
    }


def tree_from_dict(payload: dict[str, Any]) -> DecisionTreeClassifier:
    """Rebuild a classifier tree from :func:`tree_to_dict` output."""
    if payload.get("kind") != "decision_tree_classifier":
        raise ValueError(f"not a serialised tree: kind={payload.get('kind')!r}")
    tree = DecisionTreeClassifier(criterion=payload.get("criterion", "gini"))
    tree.n_classes_ = int(payload["n_classes"])
    tree.n_features_ = int(payload["n_features"])
    tree.root_ = _node_from_dict(payload["root"])
    return tree


def forest_to_dict(forest: RandomForestClassifier) -> dict[str, Any]:
    """Serialise a fitted forest (all member trees)."""
    if not forest.trees_:
        raise ValueError("cannot serialise an unfitted forest")
    return {
        "format": FORMAT_VERSION,
        "kind": "random_forest_classifier",
        "n_classes": forest.n_classes_,
        "n_features": forest.n_features_,
        "trees": [tree_to_dict(t) for t in forest.trees_],
    }


def forest_from_dict(payload: dict[str, Any]) -> RandomForestClassifier:
    """Rebuild a forest from :func:`forest_to_dict` output."""
    if payload.get("kind") != "random_forest_classifier":
        raise ValueError(f"not a serialised forest: kind={payload.get('kind')!r}")
    forest = RandomForestClassifier(n_estimators=max(1, len(payload["trees"])))
    forest.n_classes_ = int(payload["n_classes"])
    forest.n_features_ = int(payload["n_features"])
    forest.trees_ = [tree_from_dict(t) for t in payload["trees"]]
    return forest


def dumps(payload: dict[str, Any]) -> str:
    """JSON-encode a serialised model."""
    return json.dumps(payload, separators=(",", ":"))


def loads(text: str) -> dict[str, Any]:
    """Decode a JSON-encoded serialised model."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("serialised model must be a JSON object")
    return payload
