"""Principal Component Analysis.

The paper lists PCA as the alternative dimensionality-reduction
technique to Random-Forest selection (section 5.1) and rejects it for
losing feature interpretability.  We implement it so the ablation
benchmark can quantify that trade-off on our data.
"""

from __future__ import annotations

import numpy as np


class PCA:
    """PCA via singular value decomposition of the centred data matrix."""

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n, d = x.shape
        if self.n_components > min(n, d):
            raise ValueError(
                f"n_components={self.n_components} exceeds min(n_samples, n_features)"
                f"={min(n, d)}"
            )
        self.mean_ = x.mean(axis=0)
        centred = x - self.mean_
        # SVD: rows of vt are principal directions.
        _, singular, vt = np.linalg.svd(centred, full_matrices=False)
        variance = (singular**2) / max(n - 1, 1)
        total = variance.sum()
        self.components_ = vt[: self.n_components]
        self.explained_variance_ = variance[: self.n_components]
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0 else self.explained_variance_
        )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA must be fitted before transform")
        x = np.asarray(x, dtype=float)
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map component scores back to the original feature space."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA must be fitted before inverse_transform")
        return np.asarray(z, dtype=float) @ self.components_ + self.mean_
