"""Random Forests with OOB error and Gini feature importances.

The paper uses Random Forests twice: (1) for dimensionality reduction,
ranking semantic feature groups by their power to explain the cleartext
price classes (section 5.1), chosen over PCA because RF "takes into
account the target variable ... maintains interpretability of features
and generally does not overfit"; and (2) as the encrypted-price
classifier itself (section 5.4).  Both uses need feature importances,
out-of-bag error, and class-probability outputs for AUCROC -- all
implemented here.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.util.rng import derive_seed


class RandomForestClassifier:
    """Bootstrap-aggregated CART classifier with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features: int | str | None = "sqrt",
        criterion: str = "gini",
        bootstrap: bool = True,
        oob_score: bool = False,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.criterion = criterion
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.seed = int(seed)
        self.trees_: list[DecisionTreeClassifier] = []
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self.oob_score_: float | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("bad shapes for x/y")
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit on zero samples")
        self.n_features_ = x.shape[1]
        self.n_classes_ = int(y.max()) + 1
        self.trees_ = []

        oob_votes = (
            np.zeros((n, self.n_classes_), dtype=float) if self.oob_score else None
        )
        importances = np.zeros(self.n_features_)

        for t in range(self.n_estimators):
            rng = np.random.default_rng(derive_seed(self.seed, f"tree-{t}"))
            if self.bootstrap:
                indices = rng.integers(0, n, size=n)
            else:
                indices = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                criterion=self.criterion,
                rng=rng,
            )
            tree.fit(x[indices], y[indices])
            # A bootstrap sample can miss high classes; re-align tree output
            # to the forest's class space.
            self.trees_.append(tree)
            if tree.feature_importances_ is not None:
                importances += tree.feature_importances_

            if oob_votes is not None and self.bootstrap:
                mask = np.ones(n, dtype=bool)
                mask[indices] = False
                if mask.any():
                    probs = tree.predict_proba(x[mask])
                    oob_votes[mask, : probs.shape[1]] += probs

        importances /= self.n_estimators
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances

        if oob_votes is not None:
            voted = oob_votes.sum(axis=1) > 0
            if voted.any():
                oob_pred = np.argmax(oob_votes[voted], axis=1)
                self.oob_score_ = float(np.mean(oob_pred == y[voted]))
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Average of member-tree leaf class frequencies."""
        self._check_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        total = np.zeros((x.shape[0], self.n_classes_), dtype=float)
        for tree in self.trees_:
            probs = tree.predict_proba(x)
            total[:, : probs.shape[1]] += probs
        return total / len(self.trees_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority (probability-averaged) class per row."""
        return np.argmax(self.predict_proba(x), axis=1)

    @property
    def oob_error_(self) -> float | None:
        """Out-of-bag misclassification rate (``1 - oob_score_``)."""
        return None if self.oob_score_ is None else 1.0 - self.oob_score_


class RandomForestRegressor:
    """Bootstrap-aggregated CART regressor (regression baseline)."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = int(seed)
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("bad shapes for x/y")
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit on zero samples")
        self.trees_ = []
        for t in range(self.n_estimators):
            rng = np.random.default_rng(derive_seed(self.seed, f"rtree-{t}"))
            indices = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(x[indices], y[indices])
            self.trees_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        total = np.zeros(x.shape[0], dtype=float)
        for tree in self.trees_:
            total += tree.predict(x)
        return total / len(self.trees_)
