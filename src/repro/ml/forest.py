"""Random Forests with OOB error, Gini importances and parallel fit.

The paper uses Random Forests twice: (1) for dimensionality reduction,
ranking semantic feature groups by their power to explain the cleartext
price classes (section 5.1), chosen over PCA because RF "takes into
account the target variable ... maintains interpretability of features
and generally does not overfit"; and (2) as the encrypted-price
classifier itself (section 5.4).  Both uses need feature importances,
out-of-bag error, and class-probability outputs for AUCROC -- all
implemented here.

Scale design notes
------------------

* **Class-space alignment.**  The forest validates that labels are
  contiguous ``0..K-1`` and pins every member tree to the forest's
  class space (``DecisionTreeClassifier.fit(..., n_classes=K)``), so a
  bootstrap sample that misses the highest price class still yields a
  full-width ``predict_proba``.  Trees from an *external* class space
  (e.g. a version-1 serialised payload) are re-aligned explicitly by
  class label -- leaf count vectors index by ``np.bincount`` label, so
  tree column ``j`` is class label ``j`` -- never by raw column count.
* **Parallel training.**  ``workers > 1`` fits member trees across a
  process pool.  Every tree's randomness is fully determined by
  ``derive_seed(seed, f"tree-{t}")`` (bootstrap draw and per-split
  feature subsampling share the tree's own generator), and per-tree
  results are merged strictly in tree order, so a parallel fit is
  **bit-identical** to the sequential one: same trees, same
  ``predict_proba``, same OOB votes, same importances.
* **Flattened inference.**  Member trees compile to contiguous arrays
  after fit (:mod:`repro.ml.flat`); ``predict_proba`` aggregates the
  vectorised flat traversal per tree, in tree order.  ``traversal=``
  selects the node-walk or per-row reference paths for equivalence
  checks and benchmarks -- all three agree exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.ml.histsplit import BinnedDataset
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, _check_splitter
from repro.util.parallel import pool_context, resolve_workers
from repro.util.rng import derive_seed
from repro.util.validation import reject_legacy_kwargs

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]

#: Traversal modes accepted by ``predict_proba``/``predict``.
_TRAVERSALS = ("flat", "nodes", "per-row")


# -- per-tree fit routines ---------------------------------------------------
#
# Both the sequential loop and the pool workers run *exactly* these
# functions, which is what makes parallel training bit-identical: the
# only difference between the two paths is which process executes them.

def _fit_classifier_tree(
    t: int,
    x: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    seed: int,
    bootstrap: bool,
    want_oob: bool,
    tree_kwargs: dict,
    binned: BinnedDataset | None = None,
) -> tuple[DecisionTreeClassifier, np.ndarray | None, np.ndarray | None]:
    """Fit member tree ``t``; returns (tree, oob_rows, oob_probs)."""
    n = x.shape[0]
    rng = np.random.default_rng(derive_seed(seed, f"tree-{t}"))
    indices = rng.integers(0, n, size=n) if bootstrap else np.arange(n)
    tree = DecisionTreeClassifier(rng=rng, **tree_kwargs)
    if binned is not None:
        # Hist engine: the forest binned ``x`` once; trees grow over
        # bootstrap *index subsets* of the shared codes matrix instead
        # of materialising ``x[indices]`` copies per tree.
        tree.fit(x, y, sample_indices=indices, n_classes=n_classes, binned=binned)
    else:
        tree.fit(x[indices], y[indices], n_classes=n_classes)
    oob_rows: np.ndarray | None = None
    oob_probs: np.ndarray | None = None
    if want_oob and bootstrap:
        mask = np.ones(n, dtype=bool)
        mask[indices] = False
        if mask.any():
            oob_rows = np.flatnonzero(mask)
            oob_probs = tree.predict_proba(x[oob_rows])
    return tree, oob_rows, oob_probs


def _fit_regressor_tree(
    t: int,
    x: np.ndarray,
    y: np.ndarray,
    seed: int,
    tree_kwargs: dict,
    binned: BinnedDataset | None = None,
) -> DecisionTreeRegressor:
    """Fit regressor member tree ``t``."""
    n = x.shape[0]
    rng = np.random.default_rng(derive_seed(seed, f"rtree-{t}"))
    indices = rng.integers(0, n, size=n)
    tree = DecisionTreeRegressor(rng=rng, **tree_kwargs)
    if binned is not None:
        tree.fit(x, y, sample_indices=indices, binned=binned)
    else:
        tree.fit(x[indices], y[indices])
    return tree


# -- pool plumbing -----------------------------------------------------------

_FIT_CTX: dict | None = None


def _init_fit_worker(ctx: dict) -> None:
    """Pool initializer: stash the training context once per process."""
    global _FIT_CTX
    _FIT_CTX = ctx


def _fit_tree_task(t: int):
    """Pool task: fit tree ``t`` using the per-process context."""
    ctx = _FIT_CTX
    if ctx is None:
        raise RuntimeError("fit worker used before _init_fit_worker")
    if ctx["kind"] == "classifier":
        return _fit_classifier_tree(
            t, ctx["x"], ctx["y"], ctx["n_classes"], ctx["seed"],
            ctx["bootstrap"], ctx["want_oob"], ctx["tree_kwargs"],
            binned=ctx.get("binned"),
        )
    return _fit_regressor_tree(
        t, ctx["x"], ctx["y"], ctx["seed"], ctx["tree_kwargs"],
        binned=ctx.get("binned"),
    )


def _map_tree_fits(ctx: dict, n_estimators: int, workers: int) -> list:
    """Run the per-tree fits, in a pool when ``workers > 1``.

    Results are always returned **in tree order** (``pool.map``
    preserves input order), so downstream accumulation is independent
    of worker scheduling.
    """
    if workers <= 1:
        _init_fit_worker(ctx)
        try:
            return [_fit_tree_task(t) for t in range(n_estimators)]
        finally:
            globals()["_FIT_CTX"] = None
    pool_ctx = pool_context()
    chunksize = max(1, n_estimators // (workers * 4))
    with pool_ctx.Pool(
        processes=workers, initializer=_init_fit_worker, initargs=(ctx,)
    ) as pool:
        return pool.map(_fit_tree_task, range(n_estimators), chunksize=chunksize)


def _validate_labels(y: np.ndarray) -> int:
    """Contiguity gate: labels must be exactly ``0..K-1``; returns K.

    ``y.max() + 1`` silently allocated phantom classes for skipped ids
    and crashed downstream for negative ones; make both loud.
    """
    classes = np.unique(y)
    if classes.size == 0:
        raise ValueError("cannot fit on zero samples")
    if classes[0] < 0:
        raise ValueError(
            f"class labels must be non-negative integers; got min {classes[0]}"
        )
    if not np.array_equal(classes, np.arange(classes.size)):
        raise ValueError(
            "class labels must be contiguous 0..K-1 (re-encode before fitting); "
            f"got {classes.tolist()}"
        )
    return int(classes.size)


class RandomForestClassifier:
    """Bootstrap-aggregated CART classifier with feature subsampling.

    ``workers`` controls *training* parallelism only (process pool, one
    member tree per task); it is a runtime knob, excluded from the
    serialised hyperparameters, and ``workers=N`` is guaranteed
    bit-identical to ``workers=1``.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features: int | str | None = "sqrt",
        criterion: str = "gini",
        bootstrap: bool = True,
        oob_score: bool = False,
        seed: int = 0,
        workers: int | None = 1,
        splitter: str = "exact",
        **legacy,
    ):
        reject_legacy_kwargs("RandomForestClassifier", legacy)
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.criterion = criterion
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.seed = int(seed)
        self.workers = workers
        self.splitter = _check_splitter(splitter)
        self.trees_: list[DecisionTreeClassifier] = []
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self.oob_score_: float | None = None

    def _tree_kwargs(self) -> dict:
        return dict(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            min_samples_split=self.min_samples_split,
            max_features=self.max_features,
            criterion=self.criterion,
            splitter=self.splitter,
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("bad shapes for x/y")
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit on zero samples")
        self.n_features_ = x.shape[1]
        self.n_classes_ = _validate_labels(y)
        self.trees_ = []

        oob_votes = (
            np.zeros((n, self.n_classes_), dtype=float) if self.oob_score else None
        )
        importances = np.zeros(self.n_features_)

        binned: BinnedDataset | None = None
        if self.splitter == "hist":
            # Quantise once per forest; the codes matrix is shared
            # read-only with fork-pool workers (copy-on-write pages).
            with obs.stage("forest.bin", rows=n, features=self.n_features_) as st:
                binned = BinnedDataset.from_matrix(x)
                st.set(total_bins=binned.total_bins)

        ctx = dict(
            kind="classifier",
            x=x,
            y=y,
            n_classes=self.n_classes_,
            seed=self.seed,
            bootstrap=self.bootstrap,
            want_oob=self.oob_score,
            tree_kwargs=self._tree_kwargs(),
            binned=binned,
        )
        workers = resolve_workers(self.workers, self.n_estimators)
        with obs.stage(
            "forest.fit", trees=self.n_estimators, rows=n, workers=workers
        ) as st:
            results = _map_tree_fits(ctx, self.n_estimators, workers)

            # Merge strictly in tree order: float accumulation order is
            # part of the bit-identical parallel==sequential contract.
            with obs.span("forest.merge"):
                for tree, oob_rows, oob_probs in results:
                    self.trees_.append(tree)
                    if tree.feature_importances_ is not None:
                        importances += tree.feature_importances_
                    if oob_votes is not None and oob_rows is not None:
                        oob_votes[oob_rows] += self._aligned_probs(tree, oob_probs)

            importances /= self.n_estimators
            total = importances.sum()
            self.feature_importances_ = (
                importances / total if total > 0 else importances
            )

            if oob_votes is not None:
                voted = oob_votes.sum(axis=1) > 0
                if voted.any():
                    oob_pred = np.argmax(oob_votes[voted], axis=1)
                    self.oob_score_ = float(np.mean(oob_pred == y[voted]))
            if self.oob_score_ is not None:
                st.set(oob_score=self.oob_score_)
        return self

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")

    def _aligned_probs(self, tree: DecisionTreeClassifier, probs: np.ndarray) -> np.ndarray:
        """Align one tree's probability columns to the forest class space.

        Alignment is by **class label**: tree column ``j`` corresponds
        to class label ``tree.classes_[j]`` (``np.bincount`` ordering),
        which is scattered into the forest's column for that label.  A
        tree fitted in the forest's own class space passes through
        unchanged; a narrower tree (old serialised payloads, externally
        fitted trees) is zero-padded at its missing labels -- wherever
        they fall, not just at the top.
        """
        if probs.shape[1] == self.n_classes_:
            return probs
        if probs.shape[1] > self.n_classes_:
            raise ValueError(
                f"tree has {probs.shape[1]} classes, forest has {self.n_classes_}"
            )
        labels = (
            np.asarray(tree.classes_, dtype=int)
            if tree.classes_ is not None
            else np.arange(probs.shape[1])
        )
        aligned = np.zeros((probs.shape[0], self.n_classes_), dtype=float)
        aligned[:, labels] = probs
        return aligned

    def predict_proba(self, x: np.ndarray, traversal: str = "flat") -> np.ndarray:
        """Average of member-tree leaf class frequencies.

        ``traversal`` selects the member-tree inference path: ``"flat"``
        (vectorised flattened arrays, the default hot path), ``"nodes"``
        (index-partition walk over ``TreeNode``) or ``"per-row"`` (naive
        recursive descent).  All three return bit-identical results;
        the alternates exist for the equivalence suite and benchmarks.
        """
        self._check_fitted()
        if traversal not in _TRAVERSALS:
            raise ValueError(f"unknown traversal {traversal!r}; use {_TRAVERSALS}")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        with obs.span(
            "forest.predict_proba", rows=x.shape[0], traversal=traversal
        ):
            total = np.zeros((x.shape[0], self.n_classes_), dtype=float)
            for tree in self.trees_:
                if traversal == "flat":
                    probs = tree.predict_proba(x)
                elif traversal == "nodes":
                    probs = tree._predict_proba_nodes(x)
                else:
                    probs = tree._predict_proba_per_row(x)
                total += self._aligned_probs(tree, probs)
            return total / len(self.trees_)

    def predict(self, x: np.ndarray, traversal: str = "flat") -> np.ndarray:
        """Majority (probability-averaged) class per row."""
        return np.argmax(self.predict_proba(x, traversal=traversal), axis=1)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Flat-tree leaf id per (row, member tree): shape (n, n_trees)."""
        self._check_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.column_stack([tree.apply(x) for tree in self.trees_])

    @property
    def oob_error_(self) -> float | None:
        """Out-of-bag misclassification rate (``1 - oob_score_``)."""
        return None if self.oob_score_ is None else 1.0 - self.oob_score_


class RandomForestRegressor:
    """Bootstrap-aggregated CART regressor (regression baseline).

    ``workers`` parallelises training exactly as in
    :class:`RandomForestClassifier` (bit-identical to sequential).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
        workers: int | None = 1,
        splitter: str = "exact",
        **legacy,
    ):
        reject_legacy_kwargs("RandomForestRegressor", legacy)
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = int(seed)
        self.workers = workers
        self.splitter = _check_splitter(splitter)
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("bad shapes for x/y")
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot fit on zero samples")
        binned: BinnedDataset | None = None
        if self.splitter == "hist":
            with obs.stage("forest.bin", rows=n, features=x.shape[1]) as st:
                binned = BinnedDataset.from_matrix(x)
                st.set(total_bins=binned.total_bins)
        ctx = dict(
            kind="regressor",
            x=x,
            y=y,
            seed=self.seed,
            tree_kwargs=dict(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self.splitter,
            ),
            binned=binned,
        )
        workers = resolve_workers(self.workers, self.n_estimators)
        self.trees_ = list(_map_tree_fits(ctx, self.n_estimators, workers))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        total = np.zeros(x.shape[0], dtype=float)
        for tree in self.trees_:
            total += tree.predict(x)
        return total / len(self.trees_)
