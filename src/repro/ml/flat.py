"""Flattened (array-of-struct) tree representation for fast inference.

:class:`repro.ml.tree.TreeNode` is the right structure for *fitting* --
growth is naturally recursive and nodes are born one at a time -- but it
is the wrong structure for *scoring*: traversing a linked object graph
costs a Python attribute lookup per node per batch partition, and the
PME has to score every encrypted impression in dataset D (hundreds of
thousands of rows through a 60-tree forest).

:class:`FlatTree` compiles a fitted ``TreeNode`` graph into five
contiguous numpy arrays (``feature``/``threshold``/``left``/``right``/
``value``) indexed by node id.  Batch traversal then becomes a
*level-synchronous* vectorised walk: one fancy-indexing step advances
every still-active row by one level, so the Python-interpreter cost is
``O(depth)`` instead of ``O(rows x depth)`` (per-row recursion) or
``O(nodes)`` (the index-partition node walk).  Probabilities are
identical bit-for-bit to the recursive result: leaf class frequencies
are normalised once at compile time with exactly the division the
recursive path performs at every visit.

The flat form is derived state -- it is recompiled after ``fit`` and
after deserialisation, never serialised itself, so the JSON model
package format is unchanged by its existence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.ml.tree import TreeNode

__all__ = ["FlatTree", "flatten_classifier_tree", "flatten_regressor_tree"]

#: Sentinel node id / feature id for "no child" / "is a leaf".
_NO_NODE = -1


@dataclass
class FlatTree:
    """A fitted tree compiled to contiguous arrays.

    ``feature[i] == -1`` marks node ``i`` as a leaf; internal nodes
    carry a feature index, threshold and child node ids.  ``value`` has
    one row per node: the normalised class-probability vector for
    classifier leaves (aligned to the owning forest's class space) or a
    single-column mean target for regressor leaves.  Internal-node rows
    are zero -- only leaf rows are ever gathered.
    """

    feature: np.ndarray      # (n_nodes,) int32, -1 at leaves
    threshold: np.ndarray    # (n_nodes,) float64, nan at leaves
    left: np.ndarray         # (n_nodes,) int32, -1 at leaves
    right: np.ndarray        # (n_nodes,) int32, -1 at leaves
    value: np.ndarray        # (n_nodes, n_outputs) float64

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_outputs(self) -> int:
        return int(self.value.shape[1])

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf node id reached by every row of ``x`` (vectorised).

        The walk is level-synchronous: each iteration advances all rows
        that have not yet reached a leaf by one tree level, comparing
        ``x[row, feature] <= threshold`` exactly as the recursive
        traversal does (NaN compares false and routes right, matching
        the per-row walk).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        feature = self.feature
        threshold = self.threshold
        left = self.left
        right = self.right
        node = np.zeros(x.shape[0], dtype=np.int64)
        active = np.flatnonzero(feature[node] >= 0)
        while active.size:
            current = node[active]
            go_left = x[active, feature[current]] <= threshold[current]
            nxt = np.where(go_left, left[current], right[current])
            node[active] = nxt
            active = active[feature[nxt] >= 0]
        return node

    def predict_value(self, x: np.ndarray) -> np.ndarray:
        """Gather the leaf ``value`` row for every row of ``x``."""
        return self.value[self.apply(x)]


def _flatten(root: TreeNode, n_outputs: int, leaf_rows) -> FlatTree:
    """Compile ``root`` to arrays; ``leaf_rows(nodes)`` yields value rows.

    Uses an explicit stack (a deep fitted tree must not be bounded by
    the interpreter recursion limit) and assigns node ids in pre-order,
    left child first, so recompiling the same tree always produces the
    same arrays.  The single walk collects plain Python lists (cheap
    per node) and materialises every array in one vectorised shot at
    the end -- ``leaf_rows`` receives the *list* of leaf nodes in id
    order and returns their stacked ``(n_leaves, n_outputs)`` value
    block, so per-leaf numpy calls never happen.
    """
    ids: list[int] = []
    features: list[int] = []
    thresholds: list[float] = []
    lefts: list[int] = []
    rights: list[int] = []
    leaf_ids: list[int] = []
    leaves: list[TreeNode] = []

    # Single walk, ids assigned exactly as before (a node's children
    # get the next two ids the moment their parent is visited); rows
    # are collected in visit order and scattered to id order in one
    # fancy-indexing shot per array below.  Parallel node/id stacks and
    # locally-bound list methods keep the per-node interpreter cost to
    # a handful of bytecodes -- this walk runs once per tree of a
    # 60-tree forest with tens of thousands of nodes each.
    next_id = 1
    node_stack: list[TreeNode] = [root]
    id_stack: list[int] = [0]
    nan = float("nan")
    pop_node, pop_id = node_stack.pop, id_stack.pop
    push_node, push_id = node_stack.append, id_stack.append
    add_id, add_feature = ids.append, features.append
    add_threshold = thresholds.append
    add_left, add_right = lefts.append, rights.append
    add_leaf_id, add_leaf = leaf_ids.append, leaves.append
    while node_stack:
        node = pop_node()
        idx = pop_id()
        add_id(idx)
        feature = node.feature
        if feature is None:
            add_feature(_NO_NODE)
            add_threshold(nan)
            add_left(_NO_NODE)
            add_right(_NO_NODE)
            add_leaf_id(idx)
            add_leaf(node)
            continue
        left, right, threshold = node.left, node.right, node.threshold
        assert left is not None and right is not None
        assert threshold is not None
        add_feature(feature)
        add_threshold(threshold)
        left_id = next_id
        right_id = next_id + 1
        next_id += 2
        add_left(left_id)
        add_right(right_id)
        # Push right first so the left subtree is processed (and hence
        # filled) first; ids are already fixed either way.
        push_node(right)
        push_id(right_id)
        push_node(left)
        push_id(left_id)

    n_nodes = len(features)
    order = np.asarray(ids, dtype=np.int64)
    feature = np.empty(n_nodes, dtype=np.int32)
    feature[order] = features
    threshold = np.empty(n_nodes, dtype=np.float64)
    threshold[order] = thresholds
    left = np.empty(n_nodes, dtype=np.int32)
    left[order] = lefts
    right = np.empty(n_nodes, dtype=np.int32)
    right[order] = rights
    value = np.zeros((n_nodes, n_outputs), dtype=np.float64)
    if leaves:
        value[np.asarray(leaf_ids, dtype=np.int64)] = leaf_rows(leaves)
    # Compile-time bookkeeping (once per tree per fit/deserialise --
    # never on the per-batch inference path).
    reg = obs.registry()
    reg.counter("flat.trees_compiled", "trees compiled to flat arrays").inc()
    reg.counter("flat.nodes_compiled", "total flat nodes allocated").inc(n_nodes)
    return FlatTree(
        feature=feature, threshold=threshold, left=left, right=right, value=value
    )


def flatten_classifier_tree(root: TreeNode, n_classes: int) -> FlatTree:
    """Compile a classifier tree; leaf rows are class probabilities.

    Leaf class-count vectors are normalised here, once, with the same
    ``counts / total`` (or uniform fallback for an empty leaf) the
    recursive traversal computes per visit -- so flat and recursive
    probabilities are bit-identical.  Counts from a tree fitted in a
    smaller class space are aligned by class label into the forest's
    ``n_classes`` columns.  All leaves of one tree share a class space,
    so the whole normalisation is one stacked divide instead of a
    numpy round-trip per leaf.
    """

    def leaf_rows(leaves: list[TreeNode]) -> np.ndarray:
        counts = np.stack([node.value for node in leaves]).astype(np.float64)
        m = counts.shape[1]
        if m > n_classes:
            raise ValueError(
                f"leaf has {m} classes, forest space is {n_classes}"
            )
        totals = counts.sum(axis=1, keepdims=True)
        probs = np.full_like(counts, 1.0 / max(1, m))      # empty-leaf fallback
        np.divide(counts, totals, out=probs, where=totals > 0)
        if m == n_classes:
            return probs
        # Tree class-count vectors index by label (np.bincount), so
        # column j *is* class label j: aligning is a label scatter.
        rows = np.zeros((counts.shape[0], n_classes), dtype=np.float64)
        rows[:, :m] = probs
        return rows

    return _flatten(root, n_classes, leaf_rows)


def flatten_regressor_tree(root: TreeNode) -> FlatTree:
    """Compile a regressor tree; leaf rows are the single mean target."""

    def leaf_rows(leaves: list[TreeNode]) -> np.ndarray:
        return np.asarray(
            [node.value for node in leaves], dtype=np.float64
        )[:, None]

    return _flatten(root, 1, leaf_rows)
