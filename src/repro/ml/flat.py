"""Flattened (array-of-struct) tree representation for fast inference.

:class:`repro.ml.tree.TreeNode` is the right structure for *fitting* --
growth is naturally recursive and nodes are born one at a time -- but it
is the wrong structure for *scoring*: traversing a linked object graph
costs a Python attribute lookup per node per batch partition, and the
PME has to score every encrypted impression in dataset D (hundreds of
thousands of rows through a 60-tree forest).

:class:`FlatTree` compiles a fitted ``TreeNode`` graph into five
contiguous numpy arrays (``feature``/``threshold``/``left``/``right``/
``value``) indexed by node id.  Batch traversal then becomes a
*level-synchronous* vectorised walk: one fancy-indexing step advances
every still-active row by one level, so the Python-interpreter cost is
``O(depth)`` instead of ``O(rows x depth)`` (per-row recursion) or
``O(nodes)`` (the index-partition node walk).  Probabilities are
identical bit-for-bit to the recursive result: leaf class frequencies
are normalised once at compile time with exactly the division the
recursive path performs at every visit.

The flat form is derived state -- it is recompiled after ``fit`` and
after deserialisation, never serialised itself, so the JSON model
package format is unchanged by its existence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.ml.tree import TreeNode

__all__ = ["FlatTree", "flatten_classifier_tree", "flatten_regressor_tree"]

#: Sentinel node id / feature id for "no child" / "is a leaf".
_NO_NODE = -1


@dataclass
class FlatTree:
    """A fitted tree compiled to contiguous arrays.

    ``feature[i] == -1`` marks node ``i`` as a leaf; internal nodes
    carry a feature index, threshold and child node ids.  ``value`` has
    one row per node: the normalised class-probability vector for
    classifier leaves (aligned to the owning forest's class space) or a
    single-column mean target for regressor leaves.  Internal-node rows
    are zero -- only leaf rows are ever gathered.
    """

    feature: np.ndarray      # (n_nodes,) int32, -1 at leaves
    threshold: np.ndarray    # (n_nodes,) float64, nan at leaves
    left: np.ndarray         # (n_nodes,) int32, -1 at leaves
    right: np.ndarray        # (n_nodes,) int32, -1 at leaves
    value: np.ndarray        # (n_nodes, n_outputs) float64

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])

    @property
    def n_outputs(self) -> int:
        return int(self.value.shape[1])

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Leaf node id reached by every row of ``x`` (vectorised).

        The walk is level-synchronous: each iteration advances all rows
        that have not yet reached a leaf by one tree level, comparing
        ``x[row, feature] <= threshold`` exactly as the recursive
        traversal does (NaN compares false and routes right, matching
        the per-row walk).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        feature = self.feature
        threshold = self.threshold
        left = self.left
        right = self.right
        node = np.zeros(x.shape[0], dtype=np.int64)
        active = np.flatnonzero(feature[node] >= 0)
        while active.size:
            current = node[active]
            go_left = x[active, feature[current]] <= threshold[current]
            nxt = np.where(go_left, left[current], right[current])
            node[active] = nxt
            active = active[feature[nxt] >= 0]
        return node

    def predict_value(self, x: np.ndarray) -> np.ndarray:
        """Gather the leaf ``value`` row for every row of ``x``."""
        return self.value[self.apply(x)]


def _flatten(root: TreeNode, n_outputs: int, leaf_row) -> FlatTree:
    """Compile ``root`` to arrays; ``leaf_row(node)`` yields value rows.

    Uses an explicit stack (a deep fitted tree must not be bounded by
    the interpreter recursion limit) and assigns node ids in pre-order,
    left child first, so recompiling the same tree always produces the
    same arrays.
    """
    # First pass: count nodes to allocate exactly once.
    n_nodes = 0
    stack = [root]
    while stack:
        node = stack.pop()
        n_nodes += 1
        if not node.is_leaf:
            assert node.left is not None and node.right is not None
            stack.append(node.right)
            stack.append(node.left)

    feature = np.full(n_nodes, _NO_NODE, dtype=np.int32)
    threshold = np.full(n_nodes, np.nan, dtype=np.float64)
    left = np.full(n_nodes, _NO_NODE, dtype=np.int32)
    right = np.full(n_nodes, _NO_NODE, dtype=np.int32)
    value = np.zeros((n_nodes, n_outputs), dtype=np.float64)

    # Second pass: pre-order id assignment and array fill.
    next_id = 1
    work: list[tuple[TreeNode, int]] = [(root, 0)]
    while work:
        node, idx = work.pop()
        if node.is_leaf:
            value[idx] = leaf_row(node)
            continue
        assert node.feature is not None and node.threshold is not None
        assert node.left is not None and node.right is not None
        feature[idx] = node.feature
        threshold[idx] = node.threshold
        left_id = next_id
        right_id = next_id + 1
        next_id += 2
        left[idx] = left_id
        right[idx] = right_id
        # Push right first so the left subtree is processed (and hence
        # filled) first; ids are already fixed either way.
        work.append((node.right, right_id))
        work.append((node.left, left_id))
    # Compile-time bookkeeping (once per tree per fit/deserialise --
    # never on the per-batch inference path).
    reg = obs.registry()
    reg.counter("flat.trees_compiled", "trees compiled to flat arrays").inc()
    reg.counter("flat.nodes_compiled", "total flat nodes allocated").inc(n_nodes)
    return FlatTree(
        feature=feature, threshold=threshold, left=left, right=right, value=value
    )


def flatten_classifier_tree(root: TreeNode, n_classes: int) -> FlatTree:
    """Compile a classifier tree; leaf rows are class probabilities.

    Leaf class-count vectors are normalised here, once, with the same
    ``counts / total`` (or uniform fallback for an empty leaf) the
    recursive traversal computes per visit -- so flat and recursive
    probabilities are bit-identical.  Counts from a tree fitted in a
    smaller class space are aligned by class label into the forest's
    ``n_classes`` columns.
    """

    def leaf_row(node: TreeNode) -> np.ndarray:
        counts = node.value
        assert isinstance(counts, np.ndarray)
        total = counts.sum()
        if total > 0:
            probs = counts / total
        else:
            probs = np.full(counts.shape[0], 1.0 / max(1, counts.shape[0]))
        if probs.shape[0] == n_classes:
            return probs
        if probs.shape[0] > n_classes:
            raise ValueError(
                f"leaf has {probs.shape[0]} classes, forest space is {n_classes}"
            )
        row = np.zeros(n_classes, dtype=np.float64)
        # Tree class-count vectors index by label (np.bincount), so
        # column j *is* class label j: aligning is a label scatter.
        row[np.arange(probs.shape[0])] = probs
        return row

    return _flatten(root, n_classes, leaf_row)


def flatten_regressor_tree(root: TreeNode) -> FlatTree:
    """Compile a regressor tree; leaf rows are the single mean target."""

    def leaf_row(node: TreeNode) -> np.ndarray:
        assert isinstance(node.value, float)
        return np.asarray([node.value], dtype=np.float64)

    return _flatten(root, 1, leaf_row)
