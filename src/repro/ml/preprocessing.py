"""Feature preprocessing: encoders and filters.

The PME's dimensionality-reduction pipeline (paper section 5.1) drops
constant features, drops near-noise features with extreme variance, and
optionally applies a high-correlation filter when no target variable is
available.  Categorical auction metadata (ADX name, city, IAB category,
slot size, ...) is encoded ordinally for the tree models -- decision
trees only need an arbitrary but consistent ordering to split on
category identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import numpy as np


class OrdinalEncoder:
    """Map categorical values to dense integer codes, column-wise.

    Unknown categories at transform time map to ``-1`` (a code no training
    sample has), which tree models treat as "falls to the left of every
    threshold" -- a deliberate, deterministic handling of unseen values.
    """

    def __init__(self) -> None:
        self.categories_: list[dict[Hashable, int]] = []

    def fit(self, columns: Sequence[Sequence[Hashable]]) -> "OrdinalEncoder":
        """Learn category codes from ``columns`` (list of value-columns)."""
        self.categories_ = []
        for col in columns:
            mapping: dict[Hashable, int] = {}
            for value in col:
                if value not in mapping:
                    mapping[value] = len(mapping)
            self.categories_.append(mapping)
        return self

    def transform(self, columns: Sequence[Sequence[Hashable]]) -> np.ndarray:
        """Encode columns into an ``(n_samples, n_features)`` float matrix."""
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"expected {len(self.categories_)} columns, got {len(columns)}"
            )
        n = len(columns[0]) if columns else 0
        out = np.empty((n, len(columns)), dtype=float)
        for j, (col, mapping) in enumerate(zip(columns, self.categories_)):
            out[:, j] = [mapping.get(v, -1) for v in col]
        return out

    def fit_transform(self, columns: Sequence[Sequence[Hashable]]) -> np.ndarray:
        return self.fit(columns).transform(columns)

    def vocabulary(self, feature: int) -> dict[Hashable, int]:
        """The learned code table for one feature column."""
        return dict(self.categories_[feature])


class OneHotEncoder:
    """Expand categorical columns into 0/1 indicator columns.

    Used by the regression baseline (section 5.4 reports that regression
    on the raw features performs poorly; we reproduce that comparison).
    """

    def __init__(self) -> None:
        self.categories_: list[list[Hashable]] = []

    def fit(self, columns: Sequence[Sequence[Hashable]]) -> "OneHotEncoder":
        self.categories_ = []
        for col in columns:
            seen: dict[Hashable, None] = {}
            for value in col:
                seen.setdefault(value, None)
            self.categories_.append(list(seen))
        return self

    def transform(self, columns: Sequence[Sequence[Hashable]]) -> np.ndarray:
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"expected {len(self.categories_)} columns, got {len(columns)}"
            )
        n = len(columns[0]) if columns else 0
        blocks: list[np.ndarray] = []
        for col, cats in zip(columns, self.categories_):
            index = {c: i for i, c in enumerate(cats)}
            block = np.zeros((n, len(cats)), dtype=float)
            for row, value in enumerate(col):
                j = index.get(value)
                if j is not None:
                    block[row, j] = 1.0
            blocks.append(block)
        if not blocks:
            return np.empty((n, 0), dtype=float)
        return np.hstack(blocks)

    def fit_transform(self, columns: Sequence[Sequence[Hashable]]) -> np.ndarray:
        return self.fit(columns).transform(columns)

    @property
    def n_output_features(self) -> int:
        return sum(len(c) for c in self.categories_)

    def feature_names(self, input_names: Sequence[str]) -> list[str]:
        """Names for the expanded columns, ``"<col>=<category>"``."""
        if len(input_names) != len(self.categories_):
            raise ValueError("one input name per fitted column required")
        names = []
        for name, cats in zip(input_names, self.categories_):
            names.extend(f"{name}={c}" for c in cats)
        return names


class Standardizer:
    """Zero-mean unit-variance scaling (used by PCA and regression)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> "Standardizer":
        x = np.asarray(matrix, dtype=float)
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant columns pass through centred
        self.scale_ = scale
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("Standardizer must be fitted before transform")
        return (np.asarray(matrix, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)


@dataclass
class VarianceFilter:
    """Drop constant and near-noise columns (paper section 5.1).

    The paper filters features "that did not vary at all (constants) or
    had very high variance (99%) (likely to be noise)".  We interpret the
    high end as: drop columns whose variance exceeds the ``upper_quantile``
    quantile of the per-column variance distribution.
    """

    lower: float = 0.0
    upper_quantile: float | None = 0.99
    kept_: np.ndarray | None = field(default=None, repr=False)

    def fit(self, matrix: np.ndarray) -> "VarianceFilter":
        x = np.asarray(matrix, dtype=float)
        if x.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        variances = x.var(axis=0)
        keep = variances > self.lower
        if self.upper_quantile is not None and x.shape[1] > 1:
            cutoff = np.quantile(variances, self.upper_quantile)
            # Strictly above the cutoff is treated as noise; ties survive.
            keep &= variances <= cutoff
        if not np.any(keep):
            raise ValueError("variance filter would drop every feature")
        self.kept_ = np.flatnonzero(keep)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.kept_ is None:
            raise RuntimeError("VarianceFilter must be fitted before transform")
        return np.asarray(matrix, dtype=float)[:, self.kept_]

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    def kept_names(self, names: Sequence[str]) -> list[str]:
        if self.kept_ is None:
            raise RuntimeError("VarianceFilter must be fitted first")
        return [names[i] for i in self.kept_]


@dataclass
class CorrelationFilter:
    """Drop one of each pair of highly correlated columns.

    The paper proposes this as the target-free fallback when cleartext
    prices are too scarce to drive supervised feature selection: features
    carrying (nearly) the same information are collapsed to one
    representative (the earlier column wins, keeping the filter
    deterministic).
    """

    threshold: float = 0.95
    kept_: np.ndarray | None = field(default=None, repr=False)

    def fit(self, matrix: np.ndarray) -> "CorrelationFilter":
        x = np.asarray(matrix, dtype=float)
        if x.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        n_features = x.shape[1]
        if n_features == 0:
            raise ValueError("no features to filter")
        std = x.std(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            corr = np.corrcoef(x, rowvar=False)
        corr = np.atleast_2d(corr)
        keep = np.ones(n_features, dtype=bool)
        for i in range(n_features):
            if not keep[i]:
                continue
            for j in range(i + 1, n_features):
                if not keep[j]:
                    continue
                if std[i] == 0.0 or std[j] == 0.0:
                    continue
                if abs(corr[i, j]) >= self.threshold:
                    keep[j] = False
        self.kept_ = np.flatnonzero(keep)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        if self.kept_ is None:
            raise RuntimeError("CorrelationFilter must be fitted before transform")
        return np.asarray(matrix, dtype=float)[:, self.kept_]

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    def kept_names(self, names: Sequence[str]) -> list[str]:
        if self.kept_ is None:
            raise RuntimeError("CorrelationFilter must be fitted first")
        return [names[i] for i in self.kept_]


class FrameEncoder:
    """Encode lists of feature dicts into numeric matrices.

    Column types (numeric vs categorical) are decided once at fit time
    and remembered, so inference-time rows are encoded with the exact
    training-time schema.  Numeric values pass through; categorical
    values are ordinally encoded; unseen categories become ``-1``.
    """

    def __init__(self, feature_names: Sequence[str]):
        if not feature_names:
            raise ValueError("feature_names must not be empty")
        self.feature_names = list(feature_names)
        self._numeric_mask: list[bool] | None = None
        self._encoder: OrdinalEncoder | None = None

    @staticmethod
    def _is_numeric(value: Hashable) -> bool:
        return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
            value, bool
        )

    def _columns(self, rows: Sequence[Mapping[str, Hashable]]) -> list[list[Hashable]]:
        return [[row.get(name) for row in rows] for name in self.feature_names]

    def fit(self, rows: Sequence[Mapping[str, Hashable]]) -> "FrameEncoder":
        if not rows:
            raise ValueError("cannot fit an encoder on zero rows")
        columns = self._columns(rows)
        self._numeric_mask = [all(self._is_numeric(v) for v in col) for col in columns]
        categorical = [c for c, num in zip(columns, self._numeric_mask) if not num]
        self._encoder = OrdinalEncoder().fit(categorical)
        return self

    def transform(self, rows: Sequence[Mapping[str, Hashable]]) -> np.ndarray:
        if self._numeric_mask is None or self._encoder is None:
            raise RuntimeError("FrameEncoder must be fitted before transform")
        columns = self._columns(rows)
        categorical = [c for c, num in zip(columns, self._numeric_mask) if not num]
        encoded = (
            self._encoder.transform(categorical)
            if categorical
            else np.empty((len(rows), 0))
        )
        out = np.empty((len(rows), len(self.feature_names)), dtype=float)
        cat_j = 0
        for j, (col, is_numeric) in enumerate(zip(columns, self._numeric_mask)):
            if is_numeric:
                out[:, j] = [float(v) if v is not None else -1.0 for v in col]
            else:
                out[:, j] = encoded[:, cat_j]
                cat_j += 1
        return out

    def fit_transform(self, rows: Sequence[Mapping[str, Hashable]]) -> np.ndarray:
        return self.fit(rows).transform(rows)

    def to_dict(self) -> dict:
        """JSON-compatible form (for shipping fitted encoders to clients)."""
        if self._numeric_mask is None or self._encoder is None:
            raise RuntimeError("FrameEncoder must be fitted before to_dict")
        return {
            "feature_names": list(self.feature_names),
            "numeric_mask": list(self._numeric_mask),
            "vocabulary": [
                {str(k): v for k, v in mapping.items()}
                for mapping in self._encoder.categories_
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FrameEncoder":
        """Rebuild a fitted encoder from :meth:`to_dict` output.

        Category keys are restored as strings, which matches the string
        categorical values used throughout the analyzer.
        """
        encoder = cls(list(payload["feature_names"]))
        encoder._numeric_mask = [bool(b) for b in payload["numeric_mask"]]
        ordinal = OrdinalEncoder()
        ordinal.categories_ = [
            {k: int(v) for k, v in vocab.items()} for vocab in payload["vocabulary"]
        ]
        encoder._encoder = ordinal
        return encoder
