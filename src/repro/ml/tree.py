"""CART decision trees (classification and regression), from scratch.

The paper's price model is a Random Forest whose member trees are CART
trees over mixed (ordinally encoded) auction features; the model that
ships to YourAdValue clients is a single decision tree.  scikit-learn is
not available in the reproduction environment, so this is a complete
numpy implementation: exhaustive threshold search per feature using
cumulative class counts, Gini or entropy impurity, optional feature
subsampling per split (the Random Forest hook), and JSON-serialisable
node structure.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

_EPS = 1e-12


@dataclass(slots=True)
class TreeNode:
    """A node of a fitted tree.

    Leaves carry a ``value`` (class-count vector for classifiers, mean
    target for regressors); internal nodes carry a ``feature`` index and
    ``threshold`` -- samples with ``x[feature] <= threshold`` go left.

    ``slots=True`` matters at fitting scale: a depth-18 forest allocates
    tens of thousands of nodes per tree, and both growth bookkeeping and
    the flat compile walk the graph through plain attribute access.
    """

    value: np.ndarray | float
    n_samples: int
    impurity: float
    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def n_leaves(self) -> int:
        """Number of leaves in the subtree rooted here."""
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.n_leaves() + self.right.n_leaves()


def _gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector.

    Short vectors take a pure-Python path: below 8 elements numpy's
    ``add.reduce`` accumulates sequentially from the first element, so
    the Python loop performs the *same* float64 operations in the same
    order and the result is bit-identical -- while skipping ~5 numpy
    dispatches per call, which matters because growth evaluates this
    once per node (tens of thousands of times per fitted tree).
    """
    if counts.shape[0] < 8:
        c = counts.tolist()
        total = c[0]
        for v in c[1:]:
            total += v
        if total == 0:
            return 0.0
        first = c[0] / total
        s = first * first
        for v in c[1:]:
            p = v / total
            s += p * p
        return 1.0 - s
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    p = p[p > 0]
    return float(-np.sum(p * np.log(p)))


def _variance(y: np.ndarray) -> float:
    """Population variance (regression impurity)."""
    if y.size == 0:
        return 0.0
    return float(y.var())


#: Split-finding engines accepted by the trees and forests.
SPLITTERS = ("exact", "hist")


def _check_splitter(splitter: str) -> str:
    if splitter not in SPLITTERS:
        raise ValueError(f"unknown splitter {splitter!r}; use one of {SPLITTERS}")
    return splitter


#: Node size at or below which the exact Gini search runs as a pure
#: Python scan.  Crossover sits well above this: ~35 numpy dispatches
#: cost ~70us regardless of n, while the scan is ~10us at n=32.
_SMALL_NODE_N = 128


def _small_gini_split(
    col: list, y_l: list, n_classes: int
) -> tuple[float, float] | None:
    """Exact Gini split of one small column, evaluated in pure Python.

    Bit-identical to the array path by construction, which is why it is
    gated the way it is:

    * every count is a Python int (exact), and ``int / int`` true
      division equals numpy's float64 divide on the same values;
    * per-candidate class sums accumulate left-to-right starting from
      the first element -- numpy's ``add.reduce`` does exactly that for
      rows shorter than 8 elements, hence the ``n_classes < 8`` gate in
      the caller (at >= 8 numpy switches to an 8-way unrolled order);
    * Gini needs no transcendentals, so no libm-vs-numpy rounding can
      creep in (entropy stays on the array path for that reason);
    * NaNs would break Python ``sorted``'s ordering, so the caller
      screens them out (numpy argsort sorts them to the end instead).

    The score expression mirrors the array code operation for
    operation: ``p = lc/nl``, ``il = 1.0 - sum(p*p)``,
    ``w = (nl*il + nr*ir) / n``, first strict minimum wins.
    """
    n = len(col)
    pairs = sorted(zip(col, y_l))
    total = [0] * n_classes
    for _, c in pairs:
        total[c] += 1
    left = [0] * n_classes
    best_i = -1
    best_w = 0.0
    for i in range(n - 1):
        left[pairs[i][1]] += 1
        if pairs[i + 1][0] - pairs[i][0] > _EPS:
            nl = i + 1
            nr = n - nl
            sl = -1.0
            sr = -1.0
            for c in range(n_classes):
                p = left[c] / nl
                q = (total[c] - left[c]) / nr
                if sl < 0.0:
                    sl = p * p
                    sr = q * q
                else:
                    sl += p * p
                    sr += q * q
            w = (nl * (1.0 - sl) + nr * (1.0 - sr)) / n
            if best_i < 0 or w < best_w:
                best_w = w
                best_i = i
    if best_i < 0:
        return None
    return (pairs[best_i][0] + pairs[best_i + 1][0]) / 2.0, best_w


class _SplitSearch:
    """Vectorised best-split search shared by classifier and regressor."""

    @staticmethod
    def best_classification_split(
        x_col: np.ndarray, y: np.ndarray, n_classes: int, criterion: str
    ) -> tuple[float, float] | None:
        """Best (threshold, impurity_decrease_proxy) for one feature.

        Returns ``None`` when the column is constant.  The returned score
        is the weighted child impurity (lower is better).

        Cumulative class counts are built as *integers* with a single
        segment ``bincount``, instead of materialising an
        ``n x n_classes`` float one-hot matrix per feature (the seed
        implementation, kept as
        :meth:`best_classification_split_onehot` for the regression
        gate and the training benchmark's legacy baseline): rows between
        consecutive candidate boundaries form a segment, one
        ``bincount`` of ``segment * n_classes + class`` counts every
        (segment, class) cell in one pass, and a short cumulative sum
        over the ``m + 1`` segments yields the left-counts at every
        candidate -- two O(n) passes total, none of them per-class and
        none of them float.

        The integer counts are exactly the values the one-hot cumsum
        produces, and every downstream operation runs in the same
        order, so the result is **bit-identical** to the one-hot path
        -- ``tests/ml/test_exact_splitter.py`` holds the two to
        equality over random datasets at tier 1.  (The sort here is the
        default introsort, not the reference's stable mergesort: equal
        feature values land in the same segment, so per-segment class
        counts -- and therefore thresholds and scores -- are invariant
        to tie order.)
        """
        order = np.argsort(x_col)
        xs = x_col[order]
        # Candidate split positions: between distinct consecutive values.
        distinct = np.nonzero(np.diff(xs) > _EPS)[0]
        if distinct.size == 0:
            return None
        n = xs.size
        m = distinct.size

        # Segment ids: 0..m, bumped at every candidate boundary.  One
        # bincount of seg*n_classes + y counts each (segment, class)
        # cell; the cumulative sum over segments gives
        # lc[i, c] = #{class c among the first distinct[i]+1 samples}
        # and its final row is the node's total class counts.
        seg = np.zeros(n, dtype=np.int64)
        seg[distinct + 1] = 1
        np.cumsum(seg, out=seg)
        seg *= n_classes
        seg += y[order]
        csc = np.cumsum(
            np.bincount(seg, minlength=(m + 1) * n_classes).reshape(
                m + 1, n_classes
            ),
            axis=0,
        )
        lc = csc[:-1]
        total = csc[-1]
        rc = total[None, :] - lc
        nl = lc.sum(axis=1)
        nr = rc.sum(axis=1)

        if criterion == "gini":
            pl = lc / np.maximum(nl[:, None], _EPS)
            pr = rc / np.maximum(nr[:, None], _EPS)
            il = 1.0 - np.sum(pl * pl, axis=1)
            ir = 1.0 - np.sum(pr * pr, axis=1)
        elif criterion == "entropy":
            pl = lc / np.maximum(nl[:, None], _EPS)
            pr = rc / np.maximum(nr[:, None], _EPS)
            with np.errstate(divide="ignore", invalid="ignore"):
                il = -np.sum(np.where(pl > 0, pl * np.log(pl), 0.0), axis=1)
                ir = -np.sum(np.where(pr > 0, pr * np.log(pr), 0.0), axis=1)
        else:
            raise ValueError(f"unknown criterion {criterion!r}")

        weighted = (nl * il + nr * ir) / n
        best = int(np.argmin(weighted))
        idx = distinct[best]
        threshold = (xs[idx] + xs[idx + 1]) / 2.0
        return float(threshold), float(weighted[best])

    @staticmethod
    def best_classification_split_multi(
        cols: np.ndarray,
        y: np.ndarray,
        n_classes: int,
        criterion: str,
        nan_free: bool = False,
    ) -> list[tuple[float, float] | None]:
        """Per-column best splits for a ``(n, k)`` block of features.

        Returns one ``(threshold, score)`` (or ``None`` for a constant
        column) per column, **bit-identical** to calling
        :meth:`best_classification_split` column by column -- this is
        the entry the classifier growth loop uses, so one batched
        numpy-call sequence replaces ``max_features`` separate splitter
        invocations per node.  On a depth-capped tree almost every node
        is small, where the fixed interpreter cost of ~30 numpy calls
        dwarfs the arithmetic; batching the candidate features divides
        that fixed cost by ``k``.

        Identity argument: every per-column quantity is assembled from
        the same integer counts (segment ``bincount`` per column,
        stacked, with exact integer prefix subtraction to undo the
        shared cumulative sum), and all float scoring operations are
        elementwise or row-wise over the per-candidate axis -- numpy
        ufuncs are value-deterministic, so stacking candidates from
        several columns into one array cannot change any per-candidate
        result.  Argmin semantics (first strict minimum) are replicated
        per column.

        Small Gini nodes short-circuit to a pure-Python scan
        (:func:`_small_gini_split`): on a depth-capped tree the *count*
        of tiny nodes dwarfs everything else, and at ``n <= 128`` the
        fixed cost of ~35 numpy dispatches exceeds the arithmetic by an
        order of magnitude.  The scan is restricted to cases where
        Python-float evaluation provably reproduces the numpy result
        bit for bit (see its docstring) and falls through to the array
        path otherwise.
        """
        cols = np.asarray(cols)
        n, k = cols.shape
        if (
            n <= _SMALL_NODE_N
            and criterion == "gini"
            and n_classes < 8
            and (nan_free or not np.isnan(cols).any())
        ):
            y_l = y.tolist()
            return [
                _small_gini_split(col, y_l, n_classes)
                for col in cols.T.tolist()
            ]
        order = np.argsort(cols, axis=0)
        # Plain fancy indexing: identical gather to ``take_along_axis``
        # without its per-call index-grid construction overhead.
        xs = cols[order, np.arange(k)]
        d = (xs[1:] - xs[:-1]) > _EPS
        m = d.sum(axis=0)
        out: list[tuple[float, float] | None] = [None] * k
        if not m.any():
            return out

        # Per-row segment ids per column (0..m_j), offset so every
        # (column, segment) pair owns a distinct id, then one bincount
        # of id * n_classes + class counts every cell in a single pass.
        seg = np.zeros((n, k), dtype=np.int64)
        np.cumsum(d, axis=0, dtype=np.int64, out=seg[1:])
        segs_per_col = m + 1
        col_off = np.zeros(k, dtype=np.int64)
        np.cumsum(segs_per_col[:-1], out=col_off[1:])
        ts = int(col_off[-1] + segs_per_col[-1])
        addr = seg + col_off[None, :]
        addr *= n_classes
        addr += y[order]
        counts = np.bincount(
            addr.ravel(), minlength=ts * n_classes
        ).reshape(ts, n_classes)

        # One shared cumulative sum; subtracting each column's integer
        # prefix restores exactly the per-column cumulative counts.
        gcs = np.cumsum(counts, axis=0)
        last = col_off + m                       # each column's final segment
        prefix = np.zeros((k, n_classes), dtype=np.int64)
        prefix[1:] = gcs[col_off[1:] - 1]
        keep = np.ones(ts, dtype=bool)
        keep[last] = False
        lc = gcs[keep] - np.repeat(prefix, m, axis=0)
        tot = gcs[last] - prefix
        rc = np.repeat(tot, m, axis=0) - lc
        nl = lc.sum(axis=1)
        nr = rc.sum(axis=1)

        if criterion == "gini":
            pl = lc / np.maximum(nl[:, None], _EPS)
            pr = rc / np.maximum(nr[:, None], _EPS)
            il = 1.0 - np.sum(pl * pl, axis=1)
            ir = 1.0 - np.sum(pr * pr, axis=1)
        elif criterion == "entropy":
            pl = lc / np.maximum(nl[:, None], _EPS)
            pr = rc / np.maximum(nr[:, None], _EPS)
            with np.errstate(divide="ignore", invalid="ignore"):
                il = -np.sum(np.where(pl > 0, pl * np.log(pl), 0.0), axis=1)
                ir = -np.sum(np.where(pr > 0, pr * np.log(pr), 0.0), axis=1)
        else:
            raise ValueError(f"unknown criterion {criterion!r}")

        weighted = (nl * il + nr * ir) / n
        # Stacked candidate -> boundary-row map, column-major like the
        # stacked counts (nonzero of the transpose walks column 0's
        # boundaries in order, then column 1's, ...).
        pos = np.nonzero(d.T)[1]
        bounds_l = np.concatenate(([0], np.cumsum(m))).tolist()
        if weighted.size <= 4096:
            # Small candidate sets: scan plain Python floats; ``<``
            # keeps the first minimum exactly like np.argmin.
            w_l = weighted.tolist()
            pos_l = pos.tolist()
            for j in range(k):
                lo, hi = bounds_l[j], bounds_l[j + 1]
                if lo == hi:
                    continue
                best = lo
                bw = w_l[lo]
                for t in range(lo + 1, hi):
                    wt = w_l[t]
                    if wt < bw:
                        bw = wt
                        best = t
                idx = pos_l[best]
                out[j] = (float((xs[idx, j] + xs[idx + 1, j]) / 2.0), bw)
        else:
            for j in range(k):
                lo, hi = bounds_l[j], bounds_l[j + 1]
                if lo == hi:
                    continue
                best = lo + int(np.argmin(weighted[lo:hi]))
                idx = int(pos[best])
                out[j] = (
                    float((xs[idx, j] + xs[idx + 1, j]) / 2.0),
                    float(weighted[best]),
                )
        return out

    @staticmethod
    def best_classification_split_onehot(
        x_col: np.ndarray, y: np.ndarray, n_classes: int, criterion: str
    ) -> tuple[float, float] | None:
        """The seed implementation: dense one-hot + float ``cumsum``.

        Allocates an ``n x n_classes`` float matrix per candidate
        feature per node -- the hot-path cost the integer-count rewrite
        above removes.  Kept (not exported) as the bit-identity
        reference for ``tests/ml/test_exact_splitter.py`` and as the
        "legacy exact" baseline the training benchmark measures the
        satellite speedup against.
        """
        order = np.argsort(x_col, kind="mergesort")
        xs = x_col[order]
        ys = y[order]
        n = xs.size
        onehot = np.zeros((n, n_classes), dtype=float)
        onehot[np.arange(n), ys] = 1.0
        left_counts = np.cumsum(onehot, axis=0)
        total = left_counts[-1]

        distinct = np.nonzero(np.diff(xs) > _EPS)[0]
        if distinct.size == 0:
            return None

        lc = left_counts[distinct]            # counts left of each candidate
        rc = total[None, :] - lc
        nl = lc.sum(axis=1)
        nr = rc.sum(axis=1)

        if criterion == "gini":
            pl = lc / np.maximum(nl[:, None], _EPS)
            pr = rc / np.maximum(nr[:, None], _EPS)
            il = 1.0 - np.sum(pl * pl, axis=1)
            ir = 1.0 - np.sum(pr * pr, axis=1)
        elif criterion == "entropy":
            pl = lc / np.maximum(nl[:, None], _EPS)
            pr = rc / np.maximum(nr[:, None], _EPS)
            with np.errstate(divide="ignore", invalid="ignore"):
                il = -np.sum(np.where(pl > 0, pl * np.log(pl), 0.0), axis=1)
                ir = -np.sum(np.where(pr > 0, pr * np.log(pr), 0.0), axis=1)
        else:
            raise ValueError(f"unknown criterion {criterion!r}")

        weighted = (nl * il + nr * ir) / n
        best = int(np.argmin(weighted))
        idx = distinct[best]
        threshold = (xs[idx] + xs[idx + 1]) / 2.0
        return float(threshold), float(weighted[best])

    @staticmethod
    def best_regression_split(x_col: np.ndarray, y: np.ndarray) -> tuple[float, float] | None:
        """Best (threshold, weighted child variance) for one feature."""
        order = np.argsort(x_col, kind="mergesort")
        xs = x_col[order]
        ys = y[order]
        n = xs.size
        distinct = np.nonzero(np.diff(xs) > _EPS)[0]
        if distinct.size == 0:
            return None

        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        nl = (distinct + 1).astype(float)
        nr = n - nl
        sum_l = csum[distinct]
        sum_r = csum[-1] - sum_l
        sum2_l = csum2[distinct]
        sum2_r = csum2[-1] - sum2_l
        var_l = np.maximum(sum2_l / nl - (sum_l / nl) ** 2, 0.0)
        var_r = np.maximum(sum2_r / nr - (sum_r / nr) ** 2, 0.0)
        weighted = (nl * var_l + nr * var_r) / n
        best = int(np.argmin(weighted))
        idx = distinct[best]
        threshold = (xs[idx] + xs[idx + 1]) / 2.0
        return float(threshold), float(weighted[best])


@dataclass
class _GrowthParams:
    max_depth: int | None
    min_samples_split: int
    min_samples_leaf: int
    min_impurity_decrease: float
    max_features: int | None
    rng: np.random.Generator | None
    #: Whole training matrix proven NaN-free at ``fit`` time.  Every
    #: node's column block is a subset of that matrix, so the per-call
    #: NaN screen in the batched splitter can be skipped for the whole
    #: growth (it would otherwise cost two numpy dispatches at each of
    #: the ~10k small nodes of a depth-capped tree).
    nan_free: bool = False


class DecisionTreeClassifier:
    """CART classifier.

    Parameters mirror the scikit-learn names so readers can orient
    themselves; ``max_features``/``rng`` enable the per-split feature
    subsampling used by :class:`repro.ml.forest.RandomForestClassifier`.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        criterion: str = "gini",
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
        splitter: str = "exact",
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = max(2, int(min_samples_split))
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.min_impurity_decrease = float(min_impurity_decrease)
        self.criterion = criterion
        self.max_features = max_features
        self.rng = rng
        self.splitter = _check_splitter(splitter)
        self.root_: TreeNode | None = None
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None
        self.flat_ = None  # FlatTree, compiled after fit / deserialise

    # -- fitting -----------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray,
            sample_indices: np.ndarray | None = None,
            n_classes: int | None = None,
            binned=None) -> "DecisionTreeClassifier":
        """Fit on ``x`` (n_samples, n_features) and integer labels ``y``.

        ``n_classes`` pins the tree's class space to an enclosing
        ensemble's (a bootstrap sample can miss the highest labels; the
        forest passes its own class count so every member tree carries
        full-width leaf count vectors).  Left ``None``, the class space
        is inferred from ``y`` as before.

        ``binned`` is a pre-built
        :class:`repro.ml.histsplit.BinnedDataset` over the *full* ``x``
        for the ``splitter="hist"`` engine -- the forest quantises once
        and shares it read-only across member trees (and fork-pool
        workers), so bootstrap resamples never re-bin the matrix.  Left
        ``None`` with ``splitter="hist"``, the tree bins ``x`` itself;
        ignored by the exact splitter.  Hist growth walks **index
        subsets** of the shared code matrix instead of copying
        ``x[mask]``/``y[mask]`` at every node.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        if np.any(y < 0):
            raise ValueError("labels must be non-negative integers")

        hist = self.splitter == "hist"
        if hist:
            idx = (
                np.arange(x.shape[0], dtype=np.intp)
                if sample_indices is None
                else np.asarray(sample_indices, dtype=np.intp)
            )
            y_sub = y[idx]
        elif sample_indices is not None:
            x = x[sample_indices]
            y = y[sample_indices]
            y_sub = y
        else:
            y_sub = y

        observed = int(y_sub.max()) + 1
        if n_classes is not None:
            if n_classes < observed:
                raise ValueError(
                    f"n_classes={n_classes} smaller than max label {observed - 1}"
                )
            self.n_classes_ = int(n_classes)
        else:
            self.n_classes_ = observed
        self.n_features_ = x.shape[1]
        # Leaf count vectors index by label (np.bincount with minlength
        # n_classes_), so column j of any output is class label j.
        self.classes_ = np.arange(self.n_classes_)
        self._importance_acc = np.zeros(self.n_features_)
        params = self._growth_params()
        if hist:
            from repro import obs
            from repro.ml.histsplit import BinnedDataset, HistClassifierGrower

            if binned is None:
                with obs.stage("tree.bin", rows=x.shape[0],
                               features=x.shape[1]):
                    binned = BinnedDataset.from_matrix(x)
            binned.check_matches(x)
            with obs.stage("tree.hist_split", rows=int(idx.size)):
                grower = HistClassifierGrower(
                    binned=binned,
                    y=y,
                    n_classes=self.n_classes_,
                    criterion=self.criterion,
                    params=params,
                    importance_acc=self._importance_acc,
                )
                self.root_ = grower.grow(idx)
        else:
            # One whole-matrix NaN screen lets every per-node splitter
            # call skip its own (see _GrowthParams.nan_free).
            params.nan_free = not bool(np.isnan(x).any())
            self.root_ = self._grow(x, y, depth=0, params=params)
        total = self._importance_acc.sum()
        self.feature_importances_ = (
            self._importance_acc / total if total > 0 else self._importance_acc
        )
        del self._importance_acc
        self.compile_flat()
        return self

    def compile_flat(self):
        """(Re)compile the flattened inference arrays from ``root_``.

        Called automatically at the end of ``fit`` and by the
        deserialiser; also usable after manual ``root_`` surgery.
        Returns the :class:`repro.ml.flat.FlatTree`.
        """
        from repro.ml.flat import flatten_classifier_tree

        root = self._check_fitted()
        self.flat_ = flatten_classifier_tree(root, self.n_classes_)
        return self.flat_

    def _growth_params(self) -> _GrowthParams:
        max_features: int | None
        if self.max_features is None:
            max_features = None
        elif self.max_features == "sqrt":
            max_features = max(1, int(np.sqrt(self.n_features_)))
        elif isinstance(self.max_features, int):
            max_features = max(1, min(self.max_features, self.n_features_))
        else:
            raise ValueError(f"bad max_features {self.max_features!r}")
        rng = self.rng
        if max_features is not None and rng is None:
            rng = np.random.default_rng(0)
        return _GrowthParams(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            max_features=max_features,
            rng=rng,
        )

    def _impurity(self, counts: np.ndarray) -> float:
        return _gini(counts) if self.criterion == "gini" else _entropy(counts)

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int,
              params: _GrowthParams) -> TreeNode:
        counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        impurity = self._impurity(counts)
        node = TreeNode(value=counts, n_samples=y.size, impurity=impurity)

        if (
            impurity <= _EPS
            or y.size < params.min_samples_split
            or (params.max_depth is not None and depth >= params.max_depth)
        ):
            return node

        feature_ids = np.arange(self.n_features_)
        cols = x
        if params.max_features is not None and params.max_features < self.n_features_:
            assert params.rng is not None
            feature_ids = params.rng.choice(
                self.n_features_, size=params.max_features, replace=False
            )
            cols = x[:, feature_ids]

        # One batched splitter call scores every candidate feature;
        # per-column results (and hence the selection below) are
        # bit-identical to the former per-feature loop.
        best_feature = -1
        best_threshold = 0.0
        best_score = np.inf
        results = _SplitSearch.best_classification_split_multi(
            cols, y, self.n_classes_, self.criterion,
            nan_free=params.nan_free,
        )
        for j, found in zip(feature_ids.tolist(), results):
            if found is None:
                continue
            threshold, score = found
            if score < best_score - _EPS:
                best_feature, best_threshold, best_score = int(j), threshold, score

        if best_feature < 0:
            return node

        mask = x[:, best_feature] <= best_threshold
        n_left = int(mask.sum())
        n_right = y.size - n_left
        if n_left < params.min_samples_leaf or n_right < params.min_samples_leaf:
            return node

        decrease = impurity - best_score
        if decrease < params.min_impurity_decrease:
            return node

        self._importance_acc[best_feature] += y.size * decrease
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, params)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, params)
        return node

    # -- prediction --------------------------------------------------------

    def _check_fitted(self) -> TreeNode:
        if self.root_ is None:
            raise RuntimeError("tree is not fitted")
        return self.root_

    def _leaf_for(self, row: np.ndarray) -> TreeNode:
        node = self._check_fitted()
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-frequency probabilities of the reached leaf, per row.

        Uses the flattened arrays (:meth:`compile_flat`) when available
        -- a level-synchronous vectorised walk whose interpreter cost is
        ``O(depth)`` -- and falls back to the index-partition node walk
        otherwise.  All traversal modes produce bit-identical output.
        """
        if self.flat_ is not None:
            x = np.atleast_2d(np.asarray(x, dtype=float))
            return self.flat_.predict_value(x)
        return self._predict_proba_nodes(x)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Flat-tree leaf node id per row (requires compiled arrays)."""
        if self.flat_ is None:
            self.compile_flat()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return self.flat_.apply(x)

    def _predict_proba_nodes(self, x: np.ndarray) -> np.ndarray:
        """Index-partition batch walk over the ``TreeNode`` graph.

        The pre-flattening hot path, kept as the reference
        implementation for the equivalence suite and benchmarks.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        root = self._check_fitted()
        out = np.empty((x.shape[0], self.n_classes_), dtype=float)
        stack: list[tuple[TreeNode, np.ndarray]] = [
            (root, np.arange(x.shape[0]))
        ]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                counts = node.value
                assert isinstance(counts, np.ndarray)
                total = counts.sum()
                probs = counts / total if total > 0 else np.full(
                    self.n_classes_, 1.0 / self.n_classes_
                )
                out[indices] = probs
                continue
            assert node.feature is not None and node.threshold is not None
            assert node.left is not None and node.right is not None
            mask = x[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out

    def _predict_proba_per_row(self, x: np.ndarray) -> np.ndarray:
        """Row-at-a-time recursive traversal (the naive baseline).

        One ``_leaf_for`` pointer chase per row -- ``O(rows x depth)``
        interpreter work.  Kept only so benchmarks and the equivalence
        suite can quantify what the batch walks buy.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_fitted()
        out = np.empty((x.shape[0], self.n_classes_), dtype=float)
        for i in range(x.shape[0]):
            counts = self._leaf_for(x[i]).value
            assert isinstance(counts, np.ndarray)
            total = counts.sum()
            out[i] = counts / total if total > 0 else np.full(
                self.n_classes_, 1.0 / self.n_classes_
            )
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return np.argmax(self.predict_proba(x), axis=1)

    # -- introspection -----------------------------------------------------

    def depth(self) -> int:
        return self._check_fitted().depth()

    def n_leaves(self) -> int:
        return self._check_fitted().n_leaves()

    def decision_path(self, row: np.ndarray) -> list[tuple[int, float, bool]]:
        """The (feature, threshold, went_left) sequence for one sample.

        YourAdValue surfaces this to explain a price estimate to the user.
        """
        node = self._check_fitted()
        path: list[tuple[int, float, bool]] = []
        row = np.asarray(row, dtype=float)
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            left = bool(row[node.feature] <= node.threshold)
            path.append((node.feature, node.threshold, left))
            node = node.left if left else node.right
            assert node is not None
        return path


class DecisionTreeRegressor:
    """CART regressor (variance reduction splits).

    Used by the regression baseline the paper tried first and rejected
    for the high-variance charge prices.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
        splitter: str = "exact",
    ):
        self.max_depth = max_depth
        self.min_samples_split = max(2, int(min_samples_split))
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.max_features = max_features
        self.rng = rng
        self.splitter = _check_splitter(splitter)
        self.root_: TreeNode | None = None
        self.n_features_: int = 0
        self.flat_ = None  # FlatTree, compiled after fit

    def compile_flat(self):
        """(Re)compile the flattened inference arrays from ``root_``."""
        from repro.ml.flat import flatten_regressor_tree

        if self.root_ is None:
            raise RuntimeError("tree is not fitted")
        self.flat_ = flatten_regressor_tree(self.root_)
        return self.flat_

    def fit(self, x: np.ndarray, y: np.ndarray,
            sample_indices: np.ndarray | None = None,
            binned=None) -> "DecisionTreeRegressor":
        """Fit on ``x`` and float targets ``y``.

        ``sample_indices``/``binned`` mirror the classifier: with
        ``splitter="hist"`` the tree grows over index subsets of a
        shared :class:`repro.ml.histsplit.BinnedDataset` (built from
        the full ``x`` when not supplied); the exact splitter subsets
        the matrix as before.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("bad shapes for x/y")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        hist = self.splitter == "hist"
        if hist:
            idx = (
                np.arange(x.shape[0], dtype=np.intp)
                if sample_indices is None
                else np.asarray(sample_indices, dtype=np.intp)
            )
        elif sample_indices is not None:
            x = x[sample_indices]
            y = y[sample_indices]
        self.n_features_ = x.shape[1]
        max_features: int | None
        if self.max_features is None:
            max_features = None
        elif self.max_features == "sqrt":
            max_features = max(1, int(np.sqrt(self.n_features_)))
        else:
            max_features = max(1, min(int(self.max_features), self.n_features_))
        rng = self.rng
        if max_features is not None and rng is None:
            rng = np.random.default_rng(0)
        params = _GrowthParams(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=0.0,
            max_features=max_features,
            rng=rng,
        )
        if hist:
            from repro import obs
            from repro.ml.histsplit import BinnedDataset, HistRegressorGrower

            if binned is None:
                with obs.stage("tree.bin", rows=x.shape[0],
                               features=x.shape[1]):
                    binned = BinnedDataset.from_matrix(x)
            binned.check_matches(x)
            with obs.stage("tree.hist_split", rows=int(idx.size)):
                grower = HistRegressorGrower(
                    binned=binned, y=y, params=params,
                )
                self.root_ = grower.grow(idx)
        else:
            self.root_ = self._grow(x, y, 0, params)
        self.compile_flat()
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int,
              params: _GrowthParams) -> TreeNode:
        impurity = _variance(y)
        node = TreeNode(value=float(y.mean()), n_samples=y.size, impurity=impurity)
        if (
            impurity <= _EPS
            or y.size < params.min_samples_split
            or (params.max_depth is not None and depth >= params.max_depth)
        ):
            return node

        feature_ids = np.arange(self.n_features_)
        if params.max_features is not None and params.max_features < self.n_features_:
            assert params.rng is not None
            feature_ids = params.rng.choice(
                self.n_features_, size=params.max_features, replace=False
            )

        best_feature = -1
        best_threshold = 0.0
        best_score = np.inf
        for j in feature_ids:
            found = _SplitSearch.best_regression_split(x[:, j], y)
            if found is None:
                continue
            threshold, score = found
            if score < best_score - _EPS:
                best_feature, best_threshold, best_score = int(j), threshold, score

        if best_feature < 0 or best_score >= impurity - _EPS:
            return node

        mask = x[:, best_feature] <= best_threshold
        if mask.sum() < params.min_samples_leaf or (~mask).sum() < params.min_samples_leaf:
            return node

        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, params)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, params)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("tree is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if self.flat_ is not None:
            return self.flat_.predict_value(x)[:, 0]
        return self._predict_nodes(x)

    def _predict_nodes(self, x: np.ndarray) -> np.ndarray:
        """Index-partition batch walk (pre-flattening reference path)."""
        out = np.empty(x.shape[0], dtype=float)
        stack: list[tuple[TreeNode, np.ndarray]] = [
            (self.root_, np.arange(x.shape[0]))
        ]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                assert isinstance(node.value, float)
                out[indices] = node.value
                continue
            assert node.feature is not None and node.threshold is not None
            assert node.left is not None and node.right is not None
            mask = x[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out
