"""CART decision trees (classification and regression), from scratch.

The paper's price model is a Random Forest whose member trees are CART
trees over mixed (ordinally encoded) auction features; the model that
ships to YourAdValue clients is a single decision tree.  scikit-learn is
not available in the reproduction environment, so this is a complete
numpy implementation: exhaustive threshold search per feature using
cumulative class counts, Gini or entropy impurity, optional feature
subsampling per split (the Random Forest hook), and JSON-serialisable
node structure.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

_EPS = 1e-12


@dataclass
class TreeNode:
    """A node of a fitted tree.

    Leaves carry a ``value`` (class-count vector for classifiers, mean
    target for regressors); internal nodes carry a ``feature`` index and
    ``threshold`` -- samples with ``x[feature] <= threshold`` go left.
    """

    value: np.ndarray | float
    n_samples: int
    impurity: float
    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 0)."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def n_leaves(self) -> int:
        """Number of leaves in the subtree rooted here."""
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return self.left.n_leaves() + self.right.n_leaves()


def _gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    p = p[p > 0]
    return float(-np.sum(p * np.log(p)))


def _variance(y: np.ndarray) -> float:
    """Population variance (regression impurity)."""
    if y.size == 0:
        return 0.0
    return float(y.var())


class _SplitSearch:
    """Vectorised best-split search shared by classifier and regressor."""

    @staticmethod
    def best_classification_split(
        x_col: np.ndarray, y: np.ndarray, n_classes: int, criterion: str
    ) -> tuple[float, float] | None:
        """Best (threshold, impurity_decrease_proxy) for one feature.

        Returns ``None`` when the column is constant.  The returned score
        is the weighted child impurity (lower is better).
        """
        order = np.argsort(x_col, kind="mergesort")
        xs = x_col[order]
        ys = y[order]
        n = xs.size
        # One-hot cumulative class counts: counts of each class among the
        # first k samples in sorted order.
        onehot = np.zeros((n, n_classes), dtype=float)
        onehot[np.arange(n), ys] = 1.0
        left_counts = np.cumsum(onehot, axis=0)
        total = left_counts[-1]

        # Candidate split positions: between distinct consecutive values.
        distinct = np.nonzero(np.diff(xs) > _EPS)[0]
        if distinct.size == 0:
            return None

        lc = left_counts[distinct]            # counts left of each candidate
        rc = total[None, :] - lc
        nl = lc.sum(axis=1)
        nr = rc.sum(axis=1)

        if criterion == "gini":
            pl = lc / np.maximum(nl[:, None], _EPS)
            pr = rc / np.maximum(nr[:, None], _EPS)
            il = 1.0 - np.sum(pl * pl, axis=1)
            ir = 1.0 - np.sum(pr * pr, axis=1)
        elif criterion == "entropy":
            pl = lc / np.maximum(nl[:, None], _EPS)
            pr = rc / np.maximum(nr[:, None], _EPS)
            with np.errstate(divide="ignore", invalid="ignore"):
                il = -np.sum(np.where(pl > 0, pl * np.log(pl), 0.0), axis=1)
                ir = -np.sum(np.where(pr > 0, pr * np.log(pr), 0.0), axis=1)
        else:
            raise ValueError(f"unknown criterion {criterion!r}")

        weighted = (nl * il + nr * ir) / n
        best = int(np.argmin(weighted))
        idx = distinct[best]
        threshold = (xs[idx] + xs[idx + 1]) / 2.0
        return float(threshold), float(weighted[best])

    @staticmethod
    def best_regression_split(x_col: np.ndarray, y: np.ndarray) -> tuple[float, float] | None:
        """Best (threshold, weighted child variance) for one feature."""
        order = np.argsort(x_col, kind="mergesort")
        xs = x_col[order]
        ys = y[order]
        n = xs.size
        distinct = np.nonzero(np.diff(xs) > _EPS)[0]
        if distinct.size == 0:
            return None

        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        nl = (distinct + 1).astype(float)
        nr = n - nl
        sum_l = csum[distinct]
        sum_r = csum[-1] - sum_l
        sum2_l = csum2[distinct]
        sum2_r = csum2[-1] - sum2_l
        var_l = np.maximum(sum2_l / nl - (sum_l / nl) ** 2, 0.0)
        var_r = np.maximum(sum2_r / nr - (sum_r / nr) ** 2, 0.0)
        weighted = (nl * var_l + nr * var_r) / n
        best = int(np.argmin(weighted))
        idx = distinct[best]
        threshold = (xs[idx] + xs[idx + 1]) / 2.0
        return float(threshold), float(weighted[best])


@dataclass
class _GrowthParams:
    max_depth: int | None
    min_samples_split: int
    min_samples_leaf: int
    min_impurity_decrease: float
    max_features: int | None
    rng: np.random.Generator | None


class DecisionTreeClassifier:
    """CART classifier.

    Parameters mirror the scikit-learn names so readers can orient
    themselves; ``max_features``/``rng`` enable the per-split feature
    subsampling used by :class:`repro.ml.forest.RandomForestClassifier`.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        criterion: str = "gini",
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = max(2, int(min_samples_split))
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.min_impurity_decrease = float(min_impurity_decrease)
        self.criterion = criterion
        self.max_features = max_features
        self.rng = rng
        self.root_: TreeNode | None = None
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None
        self.flat_ = None  # FlatTree, compiled after fit / deserialise

    # -- fitting -----------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray,
            sample_indices: np.ndarray | None = None,
            n_classes: int | None = None) -> "DecisionTreeClassifier":
        """Fit on ``x`` (n_samples, n_features) and integer labels ``y``.

        ``n_classes`` pins the tree's class space to an enclosing
        ensemble's (a bootstrap sample can miss the highest labels; the
        forest passes its own class count so every member tree carries
        full-width leaf count vectors).  Left ``None``, the class space
        is inferred from ``y`` as before.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        if np.any(y < 0):
            raise ValueError("labels must be non-negative integers")

        if sample_indices is not None:
            x = x[sample_indices]
            y = y[sample_indices]

        observed = int(y.max()) + 1
        if n_classes is not None:
            if n_classes < observed:
                raise ValueError(
                    f"n_classes={n_classes} smaller than max label {observed - 1}"
                )
            self.n_classes_ = int(n_classes)
        else:
            self.n_classes_ = observed
        self.n_features_ = x.shape[1]
        # Leaf count vectors index by label (np.bincount with minlength
        # n_classes_), so column j of any output is class label j.
        self.classes_ = np.arange(self.n_classes_)
        self._importance_acc = np.zeros(self.n_features_)
        params = self._growth_params()
        self.root_ = self._grow(x, y, depth=0, params=params)
        total = self._importance_acc.sum()
        self.feature_importances_ = (
            self._importance_acc / total if total > 0 else self._importance_acc
        )
        del self._importance_acc
        self.compile_flat()
        return self

    def compile_flat(self):
        """(Re)compile the flattened inference arrays from ``root_``.

        Called automatically at the end of ``fit`` and by the
        deserialiser; also usable after manual ``root_`` surgery.
        Returns the :class:`repro.ml.flat.FlatTree`.
        """
        from repro.ml.flat import flatten_classifier_tree

        root = self._check_fitted()
        self.flat_ = flatten_classifier_tree(root, self.n_classes_)
        return self.flat_

    def _growth_params(self) -> _GrowthParams:
        max_features: int | None
        if self.max_features is None:
            max_features = None
        elif self.max_features == "sqrt":
            max_features = max(1, int(np.sqrt(self.n_features_)))
        elif isinstance(self.max_features, int):
            max_features = max(1, min(self.max_features, self.n_features_))
        else:
            raise ValueError(f"bad max_features {self.max_features!r}")
        rng = self.rng
        if max_features is not None and rng is None:
            rng = np.random.default_rng(0)
        return _GrowthParams(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            max_features=max_features,
            rng=rng,
        )

    def _impurity(self, counts: np.ndarray) -> float:
        return _gini(counts) if self.criterion == "gini" else _entropy(counts)

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int,
              params: _GrowthParams) -> TreeNode:
        counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        impurity = self._impurity(counts)
        node = TreeNode(value=counts, n_samples=y.size, impurity=impurity)

        if (
            impurity <= _EPS
            or y.size < params.min_samples_split
            or (params.max_depth is not None and depth >= params.max_depth)
        ):
            return node

        feature_ids = np.arange(self.n_features_)
        if params.max_features is not None and params.max_features < self.n_features_:
            assert params.rng is not None
            feature_ids = params.rng.choice(
                self.n_features_, size=params.max_features, replace=False
            )

        best_feature = -1
        best_threshold = 0.0
        best_score = np.inf
        for j in feature_ids:
            found = _SplitSearch.best_classification_split(
                x[:, j], y, self.n_classes_, self.criterion
            )
            if found is None:
                continue
            threshold, score = found
            if score < best_score - _EPS:
                best_feature, best_threshold, best_score = int(j), threshold, score

        if best_feature < 0:
            return node

        mask = x[:, best_feature] <= best_threshold
        n_left = int(mask.sum())
        n_right = y.size - n_left
        if n_left < params.min_samples_leaf or n_right < params.min_samples_leaf:
            return node

        decrease = impurity - best_score
        if decrease < params.min_impurity_decrease:
            return node

        self._importance_acc[best_feature] += y.size * decrease
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, params)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, params)
        return node

    # -- prediction --------------------------------------------------------

    def _check_fitted(self) -> TreeNode:
        if self.root_ is None:
            raise RuntimeError("tree is not fitted")
        return self.root_

    def _leaf_for(self, row: np.ndarray) -> TreeNode:
        node = self._check_fitted()
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-frequency probabilities of the reached leaf, per row.

        Uses the flattened arrays (:meth:`compile_flat`) when available
        -- a level-synchronous vectorised walk whose interpreter cost is
        ``O(depth)`` -- and falls back to the index-partition node walk
        otherwise.  All traversal modes produce bit-identical output.
        """
        if self.flat_ is not None:
            x = np.atleast_2d(np.asarray(x, dtype=float))
            return self.flat_.predict_value(x)
        return self._predict_proba_nodes(x)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Flat-tree leaf node id per row (requires compiled arrays)."""
        if self.flat_ is None:
            self.compile_flat()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return self.flat_.apply(x)

    def _predict_proba_nodes(self, x: np.ndarray) -> np.ndarray:
        """Index-partition batch walk over the ``TreeNode`` graph.

        The pre-flattening hot path, kept as the reference
        implementation for the equivalence suite and benchmarks.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        root = self._check_fitted()
        out = np.empty((x.shape[0], self.n_classes_), dtype=float)
        stack: list[tuple[TreeNode, np.ndarray]] = [
            (root, np.arange(x.shape[0]))
        ]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                counts = node.value
                assert isinstance(counts, np.ndarray)
                total = counts.sum()
                probs = counts / total if total > 0 else np.full(
                    self.n_classes_, 1.0 / self.n_classes_
                )
                out[indices] = probs
                continue
            assert node.feature is not None and node.threshold is not None
            assert node.left is not None and node.right is not None
            mask = x[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out

    def _predict_proba_per_row(self, x: np.ndarray) -> np.ndarray:
        """Row-at-a-time recursive traversal (the naive baseline).

        One ``_leaf_for`` pointer chase per row -- ``O(rows x depth)``
        interpreter work.  Kept only so benchmarks and the equivalence
        suite can quantify what the batch walks buy.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._check_fitted()
        out = np.empty((x.shape[0], self.n_classes_), dtype=float)
        for i in range(x.shape[0]):
            counts = self._leaf_for(x[i]).value
            assert isinstance(counts, np.ndarray)
            total = counts.sum()
            out[i] = counts / total if total > 0 else np.full(
                self.n_classes_, 1.0 / self.n_classes_
            )
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return np.argmax(self.predict_proba(x), axis=1)

    # -- introspection -----------------------------------------------------

    def depth(self) -> int:
        return self._check_fitted().depth()

    def n_leaves(self) -> int:
        return self._check_fitted().n_leaves()

    def decision_path(self, row: np.ndarray) -> list[tuple[int, float, bool]]:
        """The (feature, threshold, went_left) sequence for one sample.

        YourAdValue surfaces this to explain a price estimate to the user.
        """
        node = self._check_fitted()
        path: list[tuple[int, float, bool]] = []
        row = np.asarray(row, dtype=float)
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            left = bool(row[node.feature] <= node.threshold)
            path.append((node.feature, node.threshold, left))
            node = node.left if left else node.right
            assert node is not None
        return path


class DecisionTreeRegressor:
    """CART regressor (variance reduction splits).

    Used by the regression baseline the paper tried first and rejected
    for the high-variance charge prices.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = max(2, int(min_samples_split))
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.max_features = max_features
        self.rng = rng
        self.root_: TreeNode | None = None
        self.n_features_: int = 0
        self.flat_ = None  # FlatTree, compiled after fit

    def compile_flat(self):
        """(Re)compile the flattened inference arrays from ``root_``."""
        from repro.ml.flat import flatten_regressor_tree

        if self.root_ is None:
            raise RuntimeError("tree is not fitted")
        self.flat_ = flatten_regressor_tree(self.root_)
        return self.flat_

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("bad shapes for x/y")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        self.n_features_ = x.shape[1]
        max_features: int | None
        if self.max_features is None:
            max_features = None
        elif self.max_features == "sqrt":
            max_features = max(1, int(np.sqrt(self.n_features_)))
        else:
            max_features = max(1, min(int(self.max_features), self.n_features_))
        rng = self.rng
        if max_features is not None and rng is None:
            rng = np.random.default_rng(0)
        params = _GrowthParams(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=0.0,
            max_features=max_features,
            rng=rng,
        )
        self.root_ = self._grow(x, y, 0, params)
        self.compile_flat()
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int,
              params: _GrowthParams) -> TreeNode:
        impurity = _variance(y)
        node = TreeNode(value=float(y.mean()), n_samples=y.size, impurity=impurity)
        if (
            impurity <= _EPS
            or y.size < params.min_samples_split
            or (params.max_depth is not None and depth >= params.max_depth)
        ):
            return node

        feature_ids = np.arange(self.n_features_)
        if params.max_features is not None and params.max_features < self.n_features_:
            assert params.rng is not None
            feature_ids = params.rng.choice(
                self.n_features_, size=params.max_features, replace=False
            )

        best_feature = -1
        best_threshold = 0.0
        best_score = np.inf
        for j in feature_ids:
            found = _SplitSearch.best_regression_split(x[:, j], y)
            if found is None:
                continue
            threshold, score = found
            if score < best_score - _EPS:
                best_feature, best_threshold, best_score = int(j), threshold, score

        if best_feature < 0 or best_score >= impurity - _EPS:
            return node

        mask = x[:, best_feature] <= best_threshold
        if mask.sum() < params.min_samples_leaf or (~mask).sum() < params.min_samples_leaf:
            return node

        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, params)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, params)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("tree is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if self.flat_ is not None:
            return self.flat_.predict_value(x)[:, 0]
        return self._predict_nodes(x)

    def _predict_nodes(self, x: np.ndarray) -> np.ndarray:
        """Index-partition batch walk (pre-flattening reference path)."""
        out = np.empty(x.shape[0], dtype=float)
        stack: list[tuple[TreeNode, np.ndarray]] = [
            (self.root_, np.arange(x.shape[0]))
        ]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                assert isinstance(node.value, float)
                out[indices] = node.value
                continue
            assert node.feature is not None and node.threshold is not None
            assert node.left is not None and node.right is not None
            mask = x[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out
