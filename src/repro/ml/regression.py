"""Linear and ridge regression.

Section 5.4: "we first applied regression models with different
combinations of dependent variables (S).  However, the high variability
of charge prices lead to low performance (high error) of the regression
models.  Therefore, we proceeded to split the prices into groups for
classification."  These baselines exist to reproduce that negative
result quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_non_negative


class LinearRegression:
    """Ordinary least squares with an intercept, solved by lstsq."""

    def __init__(self) -> None:
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("bad shapes for x/y")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.intercept_ = float(solution[0])
        self.coef_ = solution[1:]
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return x @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularised least squares (intercept unpenalised)."""

    def __init__(self, alpha: float = 1.0):
        require_non_negative(alpha, "alpha")
        self.alpha = float(alpha)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("bad shapes for x/y")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        # Centre so the intercept absorbs the means and stays unpenalised.
        x_mean = x.mean(axis=0)
        y_mean = float(y.mean())
        xc = x - x_mean
        yc = y - y_mean
        d = x.shape[1]
        gram = xc.T @ xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return x @ self.coef_ + self.intercept_
