"""Opt-in per-stage wall/CPU profiling hooks.

:func:`stage` is the one instrumentation primitive the pipeline's hot
layers use (``WeblogAnalyzer.analyze``, forest ``fit`` / flat
inference, the PME lifecycle methods, the serve micro-batcher).  It
composes the two observability channels:

* when a trace collector is active (:mod:`repro.obs.trace`), the stage
  opens a span and stamps ``cpu_s`` into its attrs on exit;
* when profiling is enabled (:func:`enable_profiling` or the
  ``REPRO_OBS_PROFILE=1`` environment variable), the stage additionally
  records ``profile.<name>.wall_seconds`` / ``.cpu_seconds`` histograms
  and a ``profile.<name>.calls`` counter in the default metrics
  registry -- sampling that survives after the trace is gone.

With tracing off *and* profiling off, ``stage()`` returns the shared
no-op span after two cheap checks: that is the fast path whose cost the
``bench_obs_overhead`` guard bounds at <3% on the tier-1 benches.

CPU time is :func:`time.process_time` (process-wide user+system); for
the single-threaded stages this is the stage's own CPU, and for
pool-parallel stages it deliberately measures the *coordinator's* CPU
(the workers' own stages profile their side).
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.obs import trace as _trace
from repro.obs.metrics import registry

__all__ = ["enable_profiling", "profiling_enabled", "stage"]

_enabled = os.environ.get("REPRO_OBS_PROFILE", "").lower() not in (
    "", "0", "false", "no",
)


def enable_profiling(on: bool = True) -> None:
    """Turn per-stage wall/CPU sampling on (or off) for this process."""
    global _enabled
    _enabled = bool(on)


def profiling_enabled() -> bool:
    return _enabled


class _Stage:
    """A profiled span: wall + CPU clocks, metrics when profiling."""

    __slots__ = ("name", "_span", "_profile", "_t0", "_cpu0")

    def __init__(self, name: str, span, profile: bool):
        self.name = name
        self._span = span
        self._profile = profile

    def set(self, **attrs: Any) -> None:
        self._span.set(**attrs)

    def __enter__(self) -> "_Stage":
        self._span.__enter__()
        self._cpu0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._cpu0
        self._span.set(cpu_s=round(cpu, 6))
        self._span.__exit__(exc_type, exc, tb)
        if self._profile:
            reg = registry()
            reg.counter(f"profile.{self.name}.calls").inc()
            reg.histogram(f"profile.{self.name}.wall_seconds").observe(wall)
            reg.histogram(f"profile.{self.name}.cpu_seconds").observe(cpu)
        return False


def stage(name: str, **attrs: Any):
    """Instrument one pipeline stage; no-op when obs is fully disabled."""
    tracing = _trace.active_trace() is not None
    if not tracing and not _enabled:
        return _trace.NOOP_SPAN
    return _Stage(name, _trace.span(name, **attrs), _enabled)
