"""Process-local metrics registry: counters, gauges, log-bin histograms.

One registry unifies what used to be bespoke per-subsystem bookkeeping
(the serve layer's ring buffers, ad-hoc benchmark counters).  Metrics
are cheap enough to bump on every request of a heavy-traffic server:

* :class:`Counter` / :class:`Gauge` -- a dict lookup plus a lock'd add
  per observation; optional labels (``counter.inc(route="/estimate")``)
  key independent series inside one metric;
* :class:`Histogram` -- **fixed log-scale bins** (default: factor-2
  buckets from 1 microsecond to ~1000 s), so observing is O(log bins)
  via bisect, memory is constant, and quantiles are read straight off
  the cumulative bin counts -- exact counts/sums, bounded-error
  percentiles, no unbounded sample ring.

Everything serialises to plain JSON (:meth:`MetricsRegistry.snapshot`),
which is the payload of serve's ``GET /metrics`` obs section, the
``repro obs dump`` CLI, and the benchmark sink.

Thread-safety: each metric guards its series dict with a lock (the
serve retrain path touches metrics from an executor thread), and the
registry guards creation, so concurrent increments never lose counts --
``tests/serve`` asserts counter exactness under 80-way concurrency.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_log_bounds",
    "registry",
]


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _key_str(key: tuple) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class Counter:
    """Monotonic counter with optional label series."""

    kind = "counter"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._values: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def series(self) -> dict[str, float]:
        with self._lock:
            return {_key_str(k): v for k, v in sorted(self._values.items())}

    def labeled(self, label: str) -> dict[str, float]:
        """The series keyed by one label's values (``{route: count}``)."""
        out: dict[str, float] = {}
        with self._lock:
            for key, v in self._values.items():
                for k, val in key:
                    if k == label:
                        out[val] = out.get(val, 0.0) + v
        return out

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {"type": self.kind, "total": self.total()}
        series = self.series()
        if set(series) != {""}:
            payload["series"] = series
        return payload


class Gauge:
    """Last-write-wins value with optional label series."""

    kind = "gauge"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._values: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def to_dict(self) -> dict:
        with self._lock:
            series = {_key_str(k): v for k, v in sorted(self._values.items())}
        if set(series) == {""}:
            return {"type": self.kind, "value": series.get("", 0.0)}
        return {"type": self.kind, "series": series}


def default_log_bounds(
    lo: float = 1e-6, hi: float = 1024.0, factor: float = 2.0
) -> tuple[float, ...]:
    """Factor-``factor`` log-scale bin upper bounds spanning [lo, hi]."""
    if not (lo > 0 and hi > lo and factor > 1):
        raise ValueError("need 0 < lo < hi and factor > 1")
    n = int(math.ceil(math.log(hi / lo, factor))) + 1
    return tuple(lo * factor ** i for i in range(n))


#: Shared default bounds (seconds): 1 us .. ~1024 s in factor-2 steps.
_DEFAULT_BOUNDS = default_log_bounds()


class Histogram:
    """Fixed log-scale-bin histogram with exact count/sum/min/max.

    ``bounds`` are ascending bin *upper* bounds; one overflow bin is
    implicit.  ``quantile`` reports the upper bound of the bin holding
    the requested rank (clamped to the observed min/max), giving
    bounded-relative-error percentiles from O(bins) memory.
    """

    kind = "histogram"

    def __init__(self, name: str, description: str = "",
                 bounds: Iterable[float] | None = None):
        self.name = name
        self.description = description
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else _DEFAULT_BOUNDS
        )
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        self._counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) off the bin counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self.count))
            seen = 0
            for idx, n in enumerate(self._counts):
                seen += n
                if seen >= rank:
                    upper = (
                        self.bounds[idx]
                        if idx < len(self.bounds)
                        else self.max
                    )
                    assert self.min is not None and self.max is not None
                    assert upper is not None
                    return min(max(upper, self.min), self.max)
            assert self.max is not None  # unreachable: ranks <= count
            return self.max

    def percentiles(
        self, points: tuple[int, ...] = (50, 90, 99)
    ) -> dict[str, float]:
        return {f"p{p}": self.quantile(p / 100.0) for p in points}

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def nonzero_bins(self) -> dict[str, int]:
        """``{upper_bound: count}`` for populated bins (JSON-friendly)."""
        out: dict[str, int] = {}
        with self._lock:
            for idx, n in enumerate(self._counts):
                if n:
                    upper = (
                        repr(self.bounds[idx])
                        if idx < len(self.bounds)
                        else "+inf"
                    )
                    out[upper] = n
        return out

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **self.percentiles(),
            "bins": self.nonzero_bins(),
        }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metrics, created on first touch, exported as one JSON dict."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, description: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, description, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {cls.__name__}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get(Gauge, name, description)

    def histogram(self, name: str, description: str = "",
                  bounds: Iterable[float] | None = None) -> Histogram:
        return self._get(Histogram, name, description, bounds=bounds)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """``{name: metric.to_dict()}`` for every registered metric."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.to_dict() for name, metric in sorted(metrics.items())}

    def reset(self) -> None:
        """Drop every metric (fresh-run CLI entry points, tests)."""
        with self._lock:
            self._metrics.clear()


#: The process-local default registry; instrumented library code
#: records here, CLI entry points dump it, serve keeps its own
#: per-server registry on top.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _DEFAULT
