"""The JSON sink: persist and render one run's trace + metrics.

CLI entry points (``repro pipeline``, ``repro analyze``) run under a
trace collector and write the finished dump here; ``repro obs dump``
reads it back and renders the span tree + metrics table.  Benchmarks
ingest the same JSON shape (``bench_obs_overhead.py`` writes its record
next to the other ``BENCH_*.json`` files).

Path resolution: ``REPRO_OBS_PATH`` env var, else
``.repro_obs/last_run.json`` under the current working directory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.trace import Trace, build_tree

__all__ = [
    "DUMP_KIND",
    "build_dump",
    "default_dump_path",
    "load_dump",
    "render_dump",
    "save_dump",
]

DUMP_KIND = "repro_obs_dump"
DEFAULT_DUMP_RELPATH = os.path.join(".repro_obs", "last_run.json")


def default_dump_path() -> Path:
    """``$REPRO_OBS_PATH`` or ``./.repro_obs/last_run.json``."""
    env = os.environ.get("REPRO_OBS_PATH")
    return Path(env) if env else Path(DEFAULT_DUMP_RELPATH)


def build_dump(trace: Trace | None = None,
               metrics: MetricsRegistry | None = None) -> dict:
    """The serialisable observability record for one run."""
    reg = metrics if metrics is not None else registry()
    payload: dict = {
        "kind": DUMP_KIND,
        "version": 1,
        "written_at": time.time(),
        "metrics": reg.snapshot(),
        "trace": None,
    }
    if trace is not None:
        payload["trace"] = {
            "name": trace.name,
            "records": trace.to_dicts(),
            "tree": trace.tree(),
        }
    return payload


def save_dump(path: str | Path | None = None, *,
              trace: Trace | None = None,
              metrics: MetricsRegistry | None = None) -> Path:
    """Write the dump JSON; creates parent directories. Returns the path."""
    target = Path(path) if path is not None else default_dump_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(build_dump(trace=trace, metrics=metrics), indent=2) + "\n",
        encoding="utf-8",
    )
    return target


def load_dump(path: str | Path | None = None) -> dict:
    """Read a dump back; raises FileNotFoundError / ValueError clearly."""
    target = Path(path) if path is not None else default_dump_path()
    payload = json.loads(target.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("kind") != DUMP_KIND:
        raise ValueError(f"{target} is not a repro obs dump")
    return payload


# -- rendering ---------------------------------------------------------------

def _render_node(node: dict, depth: int, lines: list[str]) -> None:
    attrs = {k: v for k, v in node.get("attrs", {}).items()}
    attr_text = (
        " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
        if attrs
        else ""
    )
    lines.append(
        f"{'  ' * depth}{node['name']:<{max(1, 40 - 2 * depth)}} "
        f"{node.get('duration', 0.0) * 1000:>10.2f} ms{attr_text}"
    )
    for child in node.get("children", ()):
        _render_node(child, depth + 1, lines)


def render_dump(payload: dict) -> str:
    """Human-readable span tree + metrics table for ``repro obs dump``."""
    lines: list[str] = []
    trace = payload.get("trace")
    if trace and trace.get("records"):
        lines.append(f"trace: {trace.get('name', '<unnamed>')} "
                     f"({len(trace['records'])} spans)")
        lines.append("")
        tree = trace.get("tree") or build_tree(trace["records"])
        if tree is not None:
            _render_node(tree, 0, lines)
    else:
        lines.append("trace: (none recorded)")
    metrics = payload.get("metrics") or {}
    lines.append("")
    lines.append(f"metrics: {len(metrics)} registered")
    for name, metric in sorted(metrics.items()):
        kind = metric.get("type", "?")
        if kind == "counter":
            detail = f"total={metric.get('total', 0):g}"
            series = metric.get("series")
            if series:
                detail += " " + json.dumps(series, sort_keys=True)
        elif kind == "gauge":
            detail = (
                f"value={metric['value']:g}" if "value" in metric
                else json.dumps(metric.get("series", {}), sort_keys=True)
            )
        else:
            detail = (
                f"count={metric.get('count', 0)} mean={metric.get('mean', 0):.6g} "
                f"p50={metric.get('p50', 0):.6g} p99={metric.get('p99', 0):.6g}"
            )
        lines.append(f"  {name:<44} {kind:<9} {detail}")
    return "\n".join(lines)
