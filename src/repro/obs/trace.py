"""Context-var span trees: the tracing half of the observability spine.

Every stage of the pipeline (analyzer scan, forest fit, serve
micro-batch flush, ...) can open a :func:`span` around its work.  Spans
nest through a :class:`contextvars.ContextVar`, so the tree mirrors the
dynamic call structure without any plumbing through function
signatures -- and because ``ContextVar`` state is task-local, traces in
an asyncio server never bleed between concurrently handled requests.

Design rules
------------

* **Disabled is (nearly) free.**  Tracing is off unless a
  :class:`Trace` collector is installed (``with start_trace(...):``).
  With no collector, :func:`span` returns a shared no-op context
  manager after a single ``ContextVar.get()`` -- the guard that keeps
  instrumented hot paths within the <3% overhead budget
  (``benchmarks/bench_obs_overhead.py`` enforces it).
* **Spans are serialisable.**  A finished span is a flat
  :class:`SpanRecord` (name, ids, wall start, duration, attrs) that
  round-trips through JSON.  That is what lets process-pool workers
  (:mod:`repro.analyzer.parallel`, forest fit workers) capture their
  own sub-trees and ship them back to the coordinator, which
  :func:`graft`\\ s them under its current span into one stitched tree.
* **Deterministic structure.**  Span ids are ``pid-counter`` strings --
  unique across fork/spawn workers -- but the *tree shape* (names,
  nesting, sibling order) is a pure function of the work done, so two
  runs of the same pipeline produce the same tree modulo timing.
"""

from __future__ import annotations

import itertools
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "Span",
    "SpanRecord",
    "Trace",
    "active_trace",
    "current_span_id",
    "event",
    "graft",
    "span",
    "start_trace",
]

_ids = itertools.count(1)


def _new_span_id() -> str:
    """Process-unique span id: ``pid-counter`` (stable, collision-free
    across pool workers; fork copies the counter but never the pid)."""
    return f"{os.getpid():x}-{next(_ids):x}"


@dataclass
class SpanRecord:
    """One finished span, flat and JSON-serialisable."""

    name: str
    span_id: str
    parent_id: str | None
    start: float                     # wall clock (epoch seconds)
    duration: float                  # seconds (perf_counter based)
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            start=float(payload.get("start", 0.0)),
            duration=float(payload.get("duration", 0.0)),
            attrs=dict(payload.get("attrs") or {}),
        )


class Trace:
    """A span collector; install with ``with start_trace("name"):``.

    Records are appended as spans *finish* (children before parents);
    :meth:`tree` reassembles the nesting.  ``records`` is the flat,
    serialisable form workers ship across process boundaries.
    """

    def __init__(self, name: str = "trace", **attrs: Any):
        self.name = name
        self._root_attrs = attrs
        self.records: list[SpanRecord] = []
        self.root_id: str | None = None
        self._trace_token = None
        self._root_span: Span | None = None

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Trace":
        self._trace_token = _ACTIVE.set(self)
        root = Span(self.name, self, _CURRENT.get(), dict(self._root_attrs))
        self.root_id = root.span_id
        self._root_span = root.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        assert self._root_span is not None
        self._root_span.__exit__(*exc)
        _ACTIVE.reset(self._trace_token)
        return False

    # -- export -------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.records]

    def tree(self) -> dict | None:
        """Nested ``{name, duration, attrs, children}`` view of the trace."""
        return build_tree(self.records)


def build_tree(records: Iterable[SpanRecord | dict]) -> dict | None:
    """Assemble flat span records into one nested tree.

    Children keep their record order under each parent (completion
    order, which for sequential code is start order), so the tree is
    deterministic for a deterministic run.  Records whose parent is
    missing from the set are treated as roots; multiple roots are
    wrapped under a synthetic ``<trace>`` node.
    """
    recs = [
        r if isinstance(r, SpanRecord) else SpanRecord.from_dict(r)
        for r in records
    ]
    if not recs:
        return None
    nodes: dict[str, dict] = {}
    for r in recs:
        nodes[r.span_id] = {
            "name": r.name,
            "start": r.start,
            "duration": r.duration,
            "attrs": dict(r.attrs),
            "children": [],
        }
    roots: list[dict] = []
    for r in recs:
        node = nodes[r.span_id]
        parent = nodes.get(r.parent_id) if r.parent_id else None
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    if len(roots) == 1:
        return roots[0]
    return {
        "name": "<trace>",
        "start": min(r["start"] for r in roots),
        "duration": sum(r["duration"] for r in roots),
        "attrs": {},
        "children": roots,
    }


#: The active collector (None = tracing disabled; the no-op fast path).
_ACTIVE: ContextVar[Trace | None] = ContextVar("repro_obs_trace", default=None)
#: The current (innermost open) span id, for parenting.
_CURRENT: ContextVar[str | None] = ContextVar("repro_obs_span", default=None)


class Span:
    """An open span; finishes (and records itself) on ``__exit__``."""

    __slots__ = ("name", "span_id", "parent_id", "attrs",
                 "_trace", "_token", "_t0", "_start_wall")

    def __init__(self, name: str, trace: Trace,
                 parent_id: str | None, attrs: dict):
        self.name = name
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._trace = trace

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self.span_id)
        self._start_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._trace.records.append(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self._start_wall,
                duration=duration,
                attrs=self.attrs,
            )
        )
        return False


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: Any):
    """Open a span under the current one; no-op when tracing is off."""
    trace = _ACTIVE.get()
    if trace is None:
        return NOOP_SPAN
    return Span(name, trace, _CURRENT.get(), attrs)


def start_trace(name: str = "trace", **attrs: Any) -> Trace:
    """A fresh collector; use as ``with start_trace("pipeline") as t:``."""
    return Trace(name, **attrs)


def active_trace() -> Trace | None:
    """The installed collector, or None when tracing is disabled."""
    return _ACTIVE.get()


def current_span_id() -> str | None:
    return _CURRENT.get()


def event(name: str, duration: float = 0.0, start: float | None = None,
          **attrs: Any) -> None:
    """Record a pre-measured span under the current one.

    For timings measured outside a ``with span(...)`` block -- e.g. the
    micro-batcher's per-request queue wait, whose start happened on a
    different task than its end.  No-op when tracing is off.
    """
    trace = _ACTIVE.get()
    if trace is None:
        return
    trace.records.append(
        SpanRecord(
            name=name,
            span_id=_new_span_id(),
            parent_id=_CURRENT.get(),
            start=time.time() if start is None else start,
            duration=float(duration),
            attrs=attrs,
        )
    )


def graft(records: Iterable[SpanRecord | dict],
          parent_id: str | None = None) -> int:
    """Stitch serialised worker spans under the current span.

    Worker traces are rooted at records whose ``parent_id`` is None (or
    points outside the shipped set); grafting re-parents those roots to
    ``parent_id`` (default: the coordinator's current span) and appends
    everything to the active trace.  Returns the number of grafted
    records; no-op (returns 0) when tracing is off.
    """
    trace = _ACTIVE.get()
    if trace is None:
        return 0
    if parent_id is None:
        parent_id = _CURRENT.get()
    recs = [
        r if isinstance(r, SpanRecord) else SpanRecord.from_dict(r)
        for r in records
    ]
    shipped_ids = {r.span_id for r in recs}
    for r in recs:
        if r.parent_id is None or r.parent_id not in shipped_ids:
            r = SpanRecord(
                name=r.name, span_id=r.span_id, parent_id=parent_id,
                start=r.start, duration=r.duration, attrs=r.attrs,
            )
        trace.records.append(r)
    return len(recs)
