"""``repro.obs`` -- the observability spine: tracing, metrics, profiling.

Three stdlib-only pieces, threaded through every hot layer of the
reproduction (analyzer, forest, PME, serve):

* :mod:`repro.obs.trace` -- context-var span trees.  ``with
  span("analyzer.shard", shard=3):`` nests under whatever is open;
  finished spans are flat, JSON-serialisable records, so process-pool
  workers ship their sub-trees home and the coordinator :func:`graft`\\ s
  them into one stitched trace.
* :mod:`repro.obs.metrics` -- a process-local registry of counters,
  gauges and fixed log-scale-bin histograms, exported via serve's
  ``GET /metrics``, the ``repro obs dump`` CLI, and the benchmark JSON
  sink.
* :mod:`repro.obs.profile` -- opt-in per-stage wall/CPU sampling
  (:func:`stage`), enabled by :func:`enable_profiling` or
  ``REPRO_OBS_PROFILE=1``.

The cardinal rule: **disabled observability is (nearly) free**.  With
no active trace and profiling off, :func:`span` / :func:`stage` return
a shared no-op after one or two attribute checks --
``benchmarks/bench_obs_overhead.py`` holds that overhead under 3% on
the analyzer and forest benches.

Quickstart::

    from repro import obs

    with obs.start_trace("pipeline", scale=0.05) as t:
        with obs.span("analyze", rows=n):
            ...
    print(obs.render_dump(obs.build_dump(trace=t)))
"""

from repro.obs.export import (
    DUMP_KIND,
    build_dump,
    default_dump_path,
    load_dump,
    render_dump,
    save_dump,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_log_bounds,
    registry,
)
from repro.obs.profile import enable_profiling, profiling_enabled, stage
from repro.obs.trace import (
    Span,
    SpanRecord,
    Trace,
    active_trace,
    build_tree,
    current_span_id,
    event,
    graft,
    span,
    start_trace,
)

__all__ = [
    "Counter",
    "DUMP_KIND",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "Trace",
    "active_trace",
    "build_dump",
    "build_tree",
    "current_span_id",
    "default_dump_path",
    "default_log_bounds",
    "enable_profiling",
    "event",
    "graft",
    "load_dump",
    "profiling_enabled",
    "registry",
    "render_dump",
    "save_dump",
    "span",
    "stage",
    "start_trace",
]
